#include "cluster/controller.h"

#include <utility>

#include "core/check.h"

namespace mtia {

const char *
replicaHealthName(ReplicaHealth h)
{
    switch (h) {
    case ReplicaHealth::Healthy:
        return "healthy";
    case ReplicaHealth::Suspect:
        return "suspect";
    case ReplicaHealth::Down:
        return "down";
    case ReplicaHealth::WarmingUp:
        return "warming_up";
    }
    MTIA_UNREACHABLE("unknown ReplicaHealth");
}

ClusterController::ClusterController(unsigned replicas, HealthConfig cfg,
                                     std::unique_ptr<RoutingPolicy> policy)
    : cfg_(cfg), policy_(std::move(policy)), state_(replicas)
{
    MTIA_CHECK_GT(replicas, 0u) << ": cluster needs replicas";
    MTIA_CHECK_GT(cfg_.heartbeat_interval, 0u)
        << ": heartbeat interval";
    MTIA_CHECK_GT(cfg_.miss_threshold, 0u) << ": miss threshold";
    MTIA_CHECK_GE(cfg_.warmup_slowdown, 1.0)
        << ": warm-up cannot be faster than steady state";
    MTIA_CHECK(policy_) << ": cluster controller needs a routing policy";
}

unsigned
ClusterController::route(const ClusterRequest &req,
                         const std::vector<std::int64_t> &outstanding_rows)
{
    MTIA_CHECK_EQ(outstanding_rows.size(), state_.size())
        << ": load vector does not match the replica count";
    std::vector<ReplicaLoadView> view(state_.size());
    bool any = false;
    for (std::size_t r = 0; r < state_.size(); ++r) {
        view[r].routable = state_[r].health != ReplicaHealth::Down;
        view[r].outstanding_rows = outstanding_rows[r];
        any = any || view[r].routable;
    }
    if (!any)
        return replicas(); // total outage: the caller drops
    return policy_->route(req, view);
}

void
ClusterController::heartbeat(unsigned r, Tick now)
{
    MTIA_CHECK_LT(r, state_.size()) << ": heartbeat from unknown replica";
    ReplicaState &s = state_[r];
    s.last_ack = now;
    // An ack proves liveness: a Suspect replica that was merely slow
    // recovers without a failover.
    if (s.health == ReplicaHealth::Suspect)
        s.health = ReplicaHealth::Healthy;
}

std::vector<unsigned>
ClusterController::checkHealth(Tick now)
{
    std::vector<unsigned> newly_down;
    const Tick suspect_after = cfg_.heartbeat_interval;
    const Tick down_after = cfg_.heartbeat_interval * cfg_.miss_threshold;
    for (unsigned r = 0; r < state_.size(); ++r) {
        ReplicaState &s = state_[r];
        // WarmingUp replicas heartbeat like live ones, so staleness
        // detection covers a replica killed again mid-warm-up.
        if (s.health == ReplicaHealth::Down)
            continue;
        const Tick silence = now - s.last_ack;
        if (silence > down_after) {
            s.health = ReplicaHealth::Down;
            FailoverRecord rec;
            rec.replica = r;
            rec.died = s.died != 0 ? s.died : s.last_ack;
            rec.detected = now;
            // A failover that never completed (killed mid-warm-up)
            // stays open with restored == 0; a fresh record tracks
            // the new cycle.
            s.open_failover =
                static_cast<std::int64_t>(failovers_.size());
            failovers_.push_back(rec);
            newly_down.push_back(r);
        } else if (silence > suspect_after &&
                   s.health == ReplicaHealth::Healthy) {
            s.health = ReplicaHealth::Suspect;
        }
    }
    return newly_down;
}

void
ClusterController::noteDeath(unsigned r, Tick now)
{
    MTIA_CHECK_LT(r, state_.size()) << ": death of unknown replica";
    state_[r].died = now;
}

void
ClusterController::markWarmingUp(unsigned r, Tick now)
{
    MTIA_CHECK_LT(r, state_.size()) << ": restart of unknown replica";
    ReplicaState &s = state_[r];
    MTIA_CHECK(s.health == ReplicaHealth::Down)
        << ": only a Down replica can restart";
    s.health = ReplicaHealth::WarmingUp;
    s.last_ack = now; // heartbeats resume with the process
}

void
ClusterController::markHealthy(unsigned r, Tick now)
{
    MTIA_CHECK_LT(r, state_.size()) << ": warm-up of unknown replica";
    ReplicaState &s = state_[r];
    MTIA_CHECK(s.health == ReplicaHealth::WarmingUp)
        << ": only a WarmingUp replica can finish warm-up";
    s.health = ReplicaHealth::Healthy;
    s.last_ack = now;
    s.died = 0;
    if (s.open_failover >= 0) {
        failovers_[static_cast<std::size_t>(s.open_failover)].restored =
            now;
        s.open_failover = -1;
    }
}

ReplicaHealth
ClusterController::health(unsigned r) const
{
    MTIA_CHECK_LT(r, state_.size()) << ": health of unknown replica";
    return state_[r].health;
}

bool
ClusterController::anyRoutable() const
{
    for (const ReplicaState &s : state_)
        if (s.health != ReplicaHealth::Down)
            return true;
    return false;
}

} // namespace mtia
