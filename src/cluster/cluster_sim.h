#ifndef MTIA_CLUSTER_CLUSTER_SIM_H_
#define MTIA_CLUSTER_CLUSTER_SIM_H_

/**
 * @file
 * Fleet-scale serving cluster simulator: N server replicas x M chips
 * per replica on one DES clock. Requests from a replayable
 * million-user trace are routed by a ClusterController (least-loaded
 * or consistent-hash policy), batched per replica by the
 * deadline-aware DynamicBatcher, and executed as per-shard gather
 * jobs on the chips holding each embedding shard followed by one
 * merge job — the remote/merge structure of serving/serving_sim.h
 * lifted to cluster scale. Replica health is heartbeat-tracked;
 * failover (detect -> drain -> re-route -> restart -> warm-up) and
 * chaos mode (replica kills + ECC storms from the Section 5.1
 * campaigns) exercise the paper's productionization story.
 *
 * Parallel execution: the simulation is partitioned by chip owner —
 * partition 0 is the controller/host plane (trace admission, routing,
 * health sweeps, failover orchestration) and partition 1 + r is
 * replica r (batcher, chips, in-flight batches, local counters). Each
 * partition owns a bucketed EventQueue on a lane of the PR-3
 * deterministic pool, and partitions talk ONLY through
 * sim/parallel_des.h mailboxes: every controller<->replica message
 * (admission, heartbeat ack, death/completion notice, drain
 * command/response, restart, warm-up completion) rides the modeled
 * host/network boundary with latency ClusterFabric::latency(), which
 * is also the conservative epoch width — so cross-partition events
 * always land strictly after the epoch barrier that exchanges them.
 *
 * Determinism: one seeded Rng per run (trace and chaos take fork
 * substreams), pre-generated chaos timelines, and the ParallelDes
 * index-ordered mailbox drain make every run byte-identical at any
 * MTIA_THREADS lane count — simulate() over partitions, and sweep()
 * over load points (whose nested simulate() partitions then run
 * inline), both meet the repo's standing determinism bar.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/cluster_trace.h"
#include "cluster/controller.h"
#include "cluster/dynamic_batcher.h"
#include "cluster/routing.h"
#include "host/pcie.h"
#include "sim/types.h"

namespace mtia::telemetry {
class Telemetry;
} // namespace mtia::telemetry

namespace mtia {

/** Chip-level service model for one batch. */
struct ClusterServiceModel
{
    /** Per-row embedding gather time on the owning chip. */
    Tick gather_per_row = fromMicros(2.0);
    /** Fixed gather launch cost per (chip, batch) with any rows. */
    Tick gather_base = fromMicros(200.0);
    /** Fixed merge (dense interaction) cost per batch. */
    Tick merge_base = fromMillis(1.0);
    /** Per-row merge cost. */
    Tick merge_per_row = fromMicros(2.0);
    /** Host-side scheduling gap between jobs on one chip. */
    Tick dispatch_gap = fromMicros(100.0);
    /** Chip-time cost of one NaN-consequence ECC retry. */
    Tick retry_penalty = fromMillis(1.0);
};

/**
 * The controller<->replica boundary: every cross-partition message
 * (request admission, heartbeat ack, drain traffic, restart commands)
 * crosses the host PCIe link plus a switched network hop. latency()
 * is the one-way cost — and, being the minimum cross-partition
 * latency, the epoch width of the conservative parallel DES: larger
 * switch latency = wider epochs = fewer barriers, at the price of
 * coarser control-plane reactivity.
 */
struct ClusterFabric
{
    /** Host-side ingress/egress link (src/host boundary model). */
    PcieConfig pcie;
    /** Marshalled size of one control/request message on that link. */
    Bytes message_bytes = 32 * 1024;
    /** Network hop beyond the host link (ToR switch + host stack). */
    Tick switch_latency = fromMillis(2.0);

    /** One-way controller<->replica latency; also the epoch width. */
    Tick latency() const
    {
        return switch_latency + PcieLink(pcie).transferTime(message_bytes);
    }
};

/** Full cluster scenario. */
struct ClusterConfig
{
    unsigned replicas = 4;
    unsigned chips_per_replica = 2;
    unsigned embedding_shards = 8;
    RoutingPolicyKind routing = RoutingPolicyKind::LeastLoaded;
    /** Cross-partition boundary model (also the DES epoch width). */
    ClusterFabric fabric;
    /** Batch close policy; batcher.slo is THE request SLO. The
     * service estimate fields are derived from `service` at run time
     * so slack tracking and execution always agree. */
    BatcherConfig batcher;
    ClusterServiceModel service;
    HealthConfig health;
    ChaosParams chaos;
    /** User population / sharding of the generated trace. The
     * traffic qps and duration fields are overridden per run. */
    ClusterTraceParams trace;
};

/** Result of simulating one offered load. */
struct ClusterResult
{
    std::string policy;
    double offered_qps = 0;
    double completed_qps = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t completed_in_slo = 0;
    std::uint64_t rerouted = 0; ///< requests re-routed by failovers
    std::uint64_t dropped = 0;  ///< no routable replica at arrival
    double p50_ms = 0;
    double p99_ms = 0;
    /** Fraction of ALL arrivals that completed within the SLO. */
    double slo_attainment = 0;
    /** Candidate rows gathered per embedding shard (cluster-wide). */
    std::vector<std::int64_t> shard_rows;
    double shard_skew = 0; ///< max/mean of shard_rows
    std::uint64_t batches = 0;
    std::uint64_t batches_full = 0;
    std::uint64_t batches_deadline = 0;
    std::uint64_t batches_window = 0;
    unsigned kills = 0;     ///< chaos kills + ECC crash-equivalents
    unsigned failovers = 0; ///< failovers detected by the controller
    double mean_detection_ms = 0; ///< death -> declared Down
    double mean_recovery_ms = 0;  ///< death -> Healthy again
    double max_recovery_ms = 0;
    std::uint64_t ecc_errors = 0;
    std::uint64_t ecc_benign = 0;
    std::uint64_t ecc_corrupted = 0;
    std::uint64_t ecc_retries = 0;
    std::uint64_t ecc_crashes = 0;

    /**
     * Deterministic multi-line rendering of every field (fixed-point
     * formatting, no pointers, no wall clock): the byte-identity
     * currency of the determinism tests and the bench report.
     */
    std::string summary() const;
};

/** The cluster serving simulator. */
class ClusterSimulator
{
  public:
    explicit ClusterSimulator(ClusterConfig cfg);

    /** Simulate the cluster at offered load @p qps for @p duration. */
    ClusterResult simulate(double qps, Tick duration,
                           std::uint64_t seed = 99) const;

    /**
     * Simulate several offered loads via the deterministic parallel
     * harness (one fork substream per point). Runs telemetry-detached
     * — the registry is not lane-safe — and is byte-identical at any
     * MTIA_THREADS count.
     */
    std::vector<ClusterResult> sweep(const std::vector<double> &qps,
                                     Tick duration,
                                     std::uint64_t seed = 99) const;

    const ClusterConfig &config() const { return cfg_; }

    /**
     * Attach an observability context (may be null to detach). While
     * attached, simulate() records latency histograms, request/ECC
     * counters, and failover gauges into the metric registry. The
     * registry series accumulate across simulate() calls; per-call
     * results always come from per-call scoped histograms.
     */
    void setTelemetry(telemetry::Telemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

  private:
    ClusterResult simulateImpl(double qps, Tick duration,
                               std::uint64_t seed,
                               telemetry::Telemetry *tel) const;

    ClusterConfig cfg_;
    telemetry::Telemetry *telemetry_ = nullptr;
};

} // namespace mtia

#endif // MTIA_CLUSTER_CLUSTER_SIM_H_
