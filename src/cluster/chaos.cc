#include "cluster/chaos.h"

#include <algorithm>
#include <array>

#include "core/check.h"
#include "fleet/memory_error_study.h"

namespace mtia {

namespace {

/** Regions a live serving error can land in. */
constexpr std::array<MemRegion, 4> kServingRegions = {
    MemRegion::DenseWeights,
    MemRegion::Activations,
    MemRegion::EmbeddingTable,
    MemRegion::TbeIndices,
};

/**
 * Outcome sampler per region, weighted by the Section 5.1 injection
 * campaign: a real (seeded) bit-flip campaign runs once per region
 * and its outcome counts become the storm's consequence distribution.
 */
std::vector<DiscreteSampler>
buildOutcomeSamplers(int trials, Rng &rng)
{
    std::vector<DiscreteSampler> samplers;
    samplers.reserve(kServingRegions.size());
    const MemoryErrorStudy study(rng.next());
    for (std::size_t i = 0; i < kServingRegions.size(); ++i) {
        const InjectionReport report = study.injectRegionSeeded(
            kServingRegions[i], trials, rng.next());
        samplers.emplace_back(std::vector<double>{
            static_cast<double>(report.benign),
            static_cast<double>(report.corrupted),
            static_cast<double>(report.nan),
            static_cast<double>(report.out_of_bounds),
        });
    }
    return samplers;
}

constexpr std::array<ErrorOutcome, 4> kOutcomeByIndex = {
    ErrorOutcome::Benign,
    ErrorOutcome::Corrupted,
    ErrorOutcome::NaN,
    ErrorOutcome::OutOfBounds,
};

} // namespace

std::vector<ChaosEvent>
buildChaosTimeline(const ChaosParams &params, unsigned replicas,
                   Tick duration, Rng rng)
{
    MTIA_CHECK_GT(replicas, 0u) << ": chaos timeline needs replicas";
    MTIA_CHECK_GT(duration, 0u) << ": chaos timeline needs a duration";
    std::vector<ChaosEvent> events;
    if (!params.enabled)
        return events;
    MTIA_CHECK_GT(params.study_trials, 0)
        << ": chaos outcome mix needs injection trials";

    // Kills: one cluster-wide Poisson process (fork 0).
    if (params.mean_kill_interval_s > 0.0) {
        Rng kills = rng.fork(0);
        const double rate = 1.0 / params.mean_kill_interval_s;
        Tick t = 0;
        while (true) {
            t += fromSeconds(kills.exponential(rate));
            if (t >= duration)
                break;
            ChaosEvent e;
            e.time = t;
            e.replica =
                static_cast<unsigned>(kills.below(replicas));
            e.kind = ChaosKind::ReplicaKill;
            events.push_back(e);
        }
    }

    // ECC storms: an independent substream per replica (fork 1 + r),
    // so adding replicas never perturbs the others' storms. The
    // outcome mix is shared (fork comes off the same base).
    if (params.mean_storm_interval_s > 0.0 &&
        params.storm_error_rate_s > 0.0) {
        Rng mix_rng = rng.fork(replicas + 1);
        const std::vector<DiscreteSampler> samplers =
            buildOutcomeSamplers(params.study_trials, mix_rng);
        const double storm_rate = 1.0 / params.mean_storm_interval_s;
        for (unsigned r = 0; r < replicas; ++r) {
            Rng storm = rng.fork(1 + r);
            Tick t = 0;
            while (true) {
                t += fromSeconds(storm.exponential(storm_rate));
                if (t >= duration)
                    break;
                const Tick storm_end = t +
                    fromSeconds(storm.exponential(
                        1.0 / params.mean_storm_duration_s));
                Tick et = t;
                while (true) {
                    et += fromSeconds(storm.exponential(
                        params.storm_error_rate_s));
                    if (et >= storm_end || et >= duration)
                        break;
                    ChaosEvent e;
                    e.time = et;
                    e.replica = r;
                    e.kind = ChaosKind::EccError;
                    const std::size_t region_idx =
                        storm.below(kServingRegions.size());
                    e.region = kServingRegions[region_idx];
                    e.outcome = kOutcomeByIndex
                        [samplers[region_idx].sample(storm)];
                    events.push_back(e);
                }
                t = storm_end;
            }
        }
    }

    // Deterministic total order: time, then generation order (kills
    // were generated before storms, storms by ascending replica).
    std::stable_sort(events.begin(), events.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         return a.time < b.time;
                     });
    return events;
}

} // namespace mtia
