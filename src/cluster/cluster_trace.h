#ifndef MTIA_CLUSTER_CLUSTER_TRACE_H_
#define MTIA_CLUSTER_CLUSTER_TRACE_H_

/**
 * @file
 * Million-user replayable cluster traffic (Sections 3.4 and 6). One
 * trace is the fixed input a whole experiment replays: Poisson
 * arrivals with diurnal modulation and bursts come from the existing
 * traffic layer (models/workload.h), and every request is attributed
 * to a Zipf-distributed user whose embedding rows live on one primary
 * shard. Range-partitioning users onto shards puts the Zipf head on
 * the low shards, which is what produces the per-shard load skew the
 * cluster layer has to route around.
 */

#include <cstdint>
#include <vector>

#include "models/workload.h"
#include "sim/random.h"
#include "sim/types.h"

namespace mtia {

/** One request as the cluster controller sees it. */
struct ClusterRequest
{
    std::uint64_t id = 0;
    /** Originating user (Zipf-distributed over the user population). */
    std::uint64_t user = 0;
    Tick arrival = 0;
    /** Candidate items to score = embedding rows to gather. */
    std::int64_t candidates = 0;
    /** Primary embedding shard holding this user's rows. */
    unsigned home_shard = 0;
};

/** Cluster-trace shape: arrival process x user population x sharding. */
struct ClusterTraceParams
{
    /** Arrival process (qps, duration, diurnal depth, bursts). */
    TrafficParams traffic;
    /** User population size (millions in the production scenarios). */
    std::uint64_t users = 1'000'000;
    /** Zipf exponent of per-user request frequency. != 1. */
    double user_zipf_alpha = 1.1;
    /** Embedding shards the user id space is range-partitioned over. */
    unsigned embedding_shards = 8;
};

/**
 * Generate a replayable cluster trace: arrivals from generateTrace,
 * users sampled Zipf, home shard by range partition of the user id
 * space (shard = user * shards / users), so the Zipf head concentrates
 * on shard 0 and skew is a property of the trace, not the router.
 * Deterministic for a given (rng state, params); sorted by arrival.
 */
std::vector<ClusterRequest>
generateClusterTrace(Rng &rng, const ClusterTraceParams &p);

/** Total candidate rows a trace gathers from each shard. */
std::vector<std::int64_t>
shardRowLoad(const std::vector<ClusterRequest> &trace, unsigned shards);

/** Max/mean ratio of a per-shard load vector (1.0 = perfectly even). */
double shardSkew(const std::vector<std::int64_t> &rows_per_shard);

} // namespace mtia

#endif // MTIA_CLUSTER_CLUSTER_TRACE_H_
