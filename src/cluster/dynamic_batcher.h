#ifndef MTIA_CLUSTER_DYNAMIC_BATCHER_H_
#define MTIA_CLUSTER_DYNAMIC_BATCHER_H_

/**
 * @file
 * Deadline-aware dynamic batching: the event-driven, online sibling of
 * the offline serving/coalescer.h (which gained the same deadline
 * close rule). One batch is open at a time per batcher; it closes —
 * and the dispatch callback fires — on the first of:
 *
 *   Full:     accumulated rows reach capacity (closed synchronously
 *             inside add()).
 *   Deadline: the OLDEST member's SLO slack crosses the close
 *             threshold. Slack at time t is
 *               (arrival + slo) - t - estimatedService(rows),
 *             so the close time moves EARLIER as members join and the
 *             service estimate grows; stale timers are invalidated by
 *             a generation counter.
 *   Window:   the batch has been open for the max window (bounds
 *             latency when the queue is slack-rich).
 *
 * State machine: Idle -> Open (first add) -> {Full|Deadline|Window}
 * close -> dispatch -> Idle. drain() (failover re-route) empties an
 * Open batch without dispatching.
 */

#include <cstdint>
#include <vector>

#include "cluster/cluster_trace.h"
#include "core/inline_function.h"
#include "sim/event_queue.h"
#include "sim/types.h"

namespace mtia {

/** Why a batch closed. */
enum class BatchClose : std::uint8_t { Full, Deadline, Window };

/** Human-readable close-reason name. */
const char *batchCloseName(BatchClose reason);

/** One dispatched cluster batch. */
struct ClusterBatch
{
    std::uint64_t id = 0;
    Tick open_time = 0;
    Tick dispatch_time = 0;
    BatchClose reason = BatchClose::Full;
    std::vector<ClusterRequest> requests;
    std::int64_t rows = 0;
    /**
     * Earliest arrival among the members. NOT the same as
     * requests.front().arrival: a request re-routed after a failover
     * joins a younger open batch carrying its ORIGINAL arrival, so the
     * oldest member can be added last. The deadline close must track
     * this minimum or the re-routed member blows its SLO slack.
     */
    Tick oldest_arrival = 0;
};

/** Batcher policy. */
struct BatcherConfig
{
    std::int64_t capacity = 512;      ///< rows per batch
    Tick window = fromMillis(2.0);    ///< max time a batch stays open
    Tick slo = fromMillis(50.0);      ///< per-request latency budget
    Tick close_slack = fromMillis(5.0); ///< close when slack <= this
    /** Batch service estimate: base + per_row * rows (used for slack). */
    Tick service_base = fromMillis(1.0);
    Tick service_per_row = fromMicros(4.0);
};

/** Close-reason counters for reports. */
struct BatcherStats
{
    std::uint64_t batches = 0;
    std::uint64_t closed_full = 0;
    std::uint64_t closed_deadline = 0;
    std::uint64_t closed_window = 0;
    std::uint64_t requests = 0;
};

/**
 * The online batcher. Lives on an EventQueue (close timers are
 * events); add() is called at the request's routing time, and the
 * dispatch callback fires at most once per batch, in event order.
 * The batcher must outlive the queue's pending close timers — in the
 * cluster sim both are torn down together after run().
 */
class DynamicBatcher
{
  public:
    using Dispatch = InlineFunction<void(ClusterBatch &&)>;

    /** @p on_dispatch is invoked synchronously at close time. */
    DynamicBatcher(EventQueue &eq, BatcherConfig cfg,
                   Dispatch on_dispatch);

    /** Route one request into the open batch (opens one if idle). */
    void add(const ClusterRequest &req);

    /**
     * Failover: return the open batch's requests (arrival order)
     * without dispatching, leaving the batcher Idle. Pending close
     * timers become no-ops.
     */
    std::vector<ClusterRequest> drain();

    /** Rows in the currently open batch. */
    std::int64_t pendingRows() const { return open_.rows; }

    /** True if a batch is open. */
    bool hasOpenBatch() const { return open_batch_; }

    const BatcherStats &stats() const { return stats_; }
    const BatcherConfig &config() const { return cfg_; }

    /** Service-time estimate for a batch of @p rows rows. */
    Tick estimatedService(std::int64_t rows) const;

  private:
    void scheduleClose();
    void close(BatchClose reason);

    EventQueue &eq_;
    BatcherConfig cfg_;
    Dispatch on_dispatch_;
    ClusterBatch open_;
    bool open_batch_ = false;
    std::uint64_t next_id_ = 0;
    /** Invalidates stale close timers: fire only if generations match. */
    std::uint64_t close_generation_ = 0;
    BatcherStats stats_;
};

} // namespace mtia

#endif // MTIA_CLUSTER_DYNAMIC_BATCHER_H_
