#include "cluster/cluster_trace.h"

#include <algorithm>

#include "core/check.h"

namespace mtia {

std::vector<ClusterRequest>
generateClusterTrace(Rng &rng, const ClusterTraceParams &p)
{
    MTIA_CHECK_GT(p.users, 0u) << ": cluster trace needs users";
    MTIA_CHECK_GT(p.embedding_shards, 0u)
        << ": cluster trace needs at least one embedding shard";
    const std::vector<Request> arrivals = generateTrace(rng, p.traffic);
    const ZipfSampler user_sampler(p.users, p.user_zipf_alpha);

    std::vector<ClusterRequest> trace;
    trace.reserve(arrivals.size());
    for (const Request &r : arrivals) {
        ClusterRequest c;
        c.id = r.id;
        c.arrival = r.arrival;
        c.candidates = r.candidates;
        c.user = user_sampler.sample(rng);
        // Range partition: user id space split into equal shard
        // ranges, so the Zipf head (low user ids) lands on shard 0.
        c.home_shard = static_cast<unsigned>(
            (c.user * p.embedding_shards) / p.users);
        MTIA_DCHECK_LT(c.home_shard, p.embedding_shards);
        trace.push_back(c);
    }
    // generateTrace returns arrival-sorted requests; user sampling
    // preserves the order.
    return trace;
}

std::vector<std::int64_t>
shardRowLoad(const std::vector<ClusterRequest> &trace, unsigned shards)
{
    MTIA_CHECK_GT(shards, 0u) << ": shardRowLoad over zero shards";
    std::vector<std::int64_t> rows(shards, 0);
    for (const ClusterRequest &r : trace) {
        MTIA_CHECK_LT(r.home_shard, shards)
            << ": request shard outside the cluster's shard count";
        rows[r.home_shard] += r.candidates;
    }
    return rows;
}

double
shardSkew(const std::vector<std::int64_t> &rows_per_shard)
{
    if (rows_per_shard.empty())
        return 0.0;
    std::int64_t peak = 0;
    std::int64_t total = 0;
    for (const std::int64_t rows : rows_per_shard) {
        peak = std::max(peak, rows);
        total += rows;
    }
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
        static_cast<double>(rows_per_shard.size());
    return static_cast<double>(peak) / mean;
}

} // namespace mtia
