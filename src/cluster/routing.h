#ifndef MTIA_CLUSTER_ROUTING_H_
#define MTIA_CLUSTER_ROUTING_H_

/**
 * @file
 * Request routing across server replicas. Two policies behind one
 * interface: least-loaded (route to the replica with the fewest
 * outstanding rows — best load balance, worst embedding-cache
 * affinity) and consistent-hash-on-embedding-shard (requests for one
 * shard stick to one replica via a virtual-node hash ring — best
 * affinity, inherits the trace's shard skew). Both are deterministic:
 * ties break toward the lowest replica index, and the hash ring is a
 * pure function of (replica count, vnodes).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster_trace.h"

namespace mtia {

/** What the router may observe about one replica. */
struct ReplicaLoadView
{
    /** Routable: healthy, suspect, or warming up — not detected down. */
    bool routable = true;
    /** Rows queued or executing on the replica (batcher + chips). */
    std::int64_t outstanding_rows = 0;
};

/** Routing-policy interface. */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    /** Policy name for reports ("least_loaded" / "shard_hash"). */
    virtual const char *name() const = 0;

    /**
     * Pick a replica for @p req. @p view has one entry per replica;
     * at least one must be routable. Deterministic: identical inputs
     * give identical picks.
     */
    virtual unsigned route(const ClusterRequest &req,
                           const std::vector<ReplicaLoadView> &view) = 0;
};

/** Route to the routable replica with the fewest outstanding rows. */
class LeastLoadedPolicy final : public RoutingPolicy
{
  public:
    const char *name() const override { return "least_loaded"; }
    unsigned route(const ClusterRequest &req,
                   const std::vector<ReplicaLoadView> &view) override;
};

/**
 * Consistent hash on the request's home embedding shard. Each replica
 * contributes @p vnodes virtual nodes to a ring; a request walks
 * clockwise from hash(home_shard) to the first routable replica, so a
 * replica failure only remaps the keys that hashed to it.
 */
class ShardHashPolicy final : public RoutingPolicy
{
  public:
    explicit ShardHashPolicy(unsigned replicas, unsigned vnodes = 32);

    const char *name() const override { return "shard_hash"; }
    unsigned route(const ClusterRequest &req,
                   const std::vector<ReplicaLoadView> &view) override;

  private:
    struct VNode
    {
        std::uint64_t hash;
        unsigned replica;
    };
    std::vector<VNode> ring_; ///< sorted by (hash, replica)
};

/** Selector for ClusterConfig. */
enum class RoutingPolicyKind : std::uint8_t { LeastLoaded, ShardHash };

/** Human-readable policy-kind name (matches RoutingPolicy::name). */
const char *routingPolicyKindName(RoutingPolicyKind kind);

/** Factory: build the policy @p kind for an @p replicas-wide cluster. */
std::unique_ptr<RoutingPolicy> makeRoutingPolicy(RoutingPolicyKind kind,
                                                 unsigned replicas);

} // namespace mtia

#endif // MTIA_CLUSTER_ROUTING_H_
