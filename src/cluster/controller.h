#ifndef MTIA_CLUSTER_CONTROLLER_H_
#define MTIA_CLUSTER_CONTROLLER_H_

/**
 * @file
 * The cluster controller: routing facade plus replica health
 * tracking. Health is heartbeat-driven and purely sim-clocked:
 *
 *   Healthy --(>=1 missed heartbeat)--> Suspect
 *   Suspect --(miss_threshold missed)--> Down     (drain + re-route)
 *   Down    --(restart_delay elapsed)--> WarmingUp (serves, slowed)
 *   WarmingUp --(warmup elapsed)------> Healthy
 *
 * The controller never sees wall-clock time: the simulator feeds it
 * heartbeat acks and periodic checkHealth(now) sweeps, and reads back
 * which replicas newly crossed into Down so it can drain and re-route
 * their pending work. Detection latency and full recovery time per
 * failover are recorded for the cluster report.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/routing.h"
#include "sim/types.h"

namespace mtia {

/** Replica health as the controller sees it. */
enum class ReplicaHealth : std::uint8_t {
    Healthy,
    Suspect,   ///< missed >= 1 heartbeat, still routable
    Down,      ///< detected dead; drained and unroutable
    WarmingUp, ///< restarted; routable but serving slowed
};

/** Human-readable health-state name. */
const char *replicaHealthName(ReplicaHealth h);

/** Health-tracking knobs. */
struct HealthConfig
{
    Tick heartbeat_interval = fromMillis(5.0);
    /** Missed heartbeats before a replica is declared Down. */
    unsigned miss_threshold = 3;
    /** Down -> WarmingUp delay (process restart + model reload). */
    Tick restart_delay = fromMillis(200.0);
    /** WarmingUp -> Healthy delay (cache warm-up). */
    Tick warmup = fromMillis(100.0);
    /** Service-time multiplier while WarmingUp (cold caches). */
    double warmup_slowdown = 1.5;
};

/** One completed failover, for the cluster report. */
struct FailoverRecord
{
    unsigned replica = 0;
    Tick died = 0;     ///< when the replica actually stopped
    Tick detected = 0; ///< when the controller declared it Down
    Tick restored = 0; ///< when it re-entered Healthy (0 = not yet)
};

/** Routing facade + health book-keeping for one cluster. */
class ClusterController
{
  public:
    ClusterController(unsigned replicas, HealthConfig cfg,
                      std::unique_ptr<RoutingPolicy> policy);

    unsigned replicas() const
    {
        return static_cast<unsigned>(state_.size());
    }
    const HealthConfig &healthConfig() const { return cfg_; }
    RoutingPolicy &policy() { return *policy_; }

    /**
     * Route @p req given per-replica outstanding rows. Returns the
     * replica index, or replicas() when nothing is routable (caller
     * counts a drop).
     */
    unsigned route(const ClusterRequest &req,
                   const std::vector<std::int64_t> &outstanding_rows);

    /** Replica @p r acked a heartbeat at @p now. */
    void heartbeat(unsigned r, Tick now);

    /**
     * Periodic sweep: demote replicas whose last ack is stale.
     * Returns the replicas that newly crossed into Down this sweep
     * (ascending index) — the caller drains and re-routes their work.
     * @p died_at(r) gives the true death time for the failover record.
     */
    std::vector<unsigned> checkHealth(Tick now);

    /** The simulator observed replica @p r die at @p now (chaos). */
    void noteDeath(unsigned r, Tick now);

    /** Replica restarted into WarmingUp at @p now. */
    void markWarmingUp(unsigned r, Tick now);

    /** Warm-up finished: replica Healthy again at @p now. */
    void markHealthy(unsigned r, Tick now);

    ReplicaHealth health(unsigned r) const;

    /** True if any replica can accept traffic. */
    bool anyRoutable() const;

    /** Completed and in-progress failovers, in detection order. */
    const std::vector<FailoverRecord> &failovers() const
    {
        return failovers_;
    }

  private:
    struct ReplicaState
    {
        ReplicaHealth health = ReplicaHealth::Healthy;
        Tick last_ack = 0;
        Tick died = 0;
        /** Index into failovers_ of the open record; -1 if none. */
        std::int64_t open_failover = -1;
    };

    HealthConfig cfg_;
    std::unique_ptr<RoutingPolicy> policy_;
    std::vector<ReplicaState> state_;
    std::vector<FailoverRecord> failovers_;
};

} // namespace mtia

#endif // MTIA_CLUSTER_CONTROLLER_H_
