#include "cluster/dynamic_batcher.h"

#include <algorithm>
#include <utility>

#include "core/check.h"

namespace mtia {

const char *
batchCloseName(BatchClose reason)
{
    switch (reason) {
    case BatchClose::Full:
        return "full";
    case BatchClose::Deadline:
        return "deadline";
    case BatchClose::Window:
        return "window";
    }
    MTIA_UNREACHABLE("unknown BatchClose");
}

DynamicBatcher::DynamicBatcher(EventQueue &eq, BatcherConfig cfg,
                               Dispatch on_dispatch)
    : eq_(eq), cfg_(cfg), on_dispatch_(std::move(on_dispatch))
{
    MTIA_CHECK_GT(cfg_.capacity, 0) << ": batcher capacity";
    MTIA_CHECK_GT(cfg_.window, 0u) << ": batcher window";
    MTIA_CHECK_GT(cfg_.slo, 0u) << ": batcher SLO";
    MTIA_CHECK(on_dispatch_) << ": batcher needs a dispatch callback";
}

Tick
DynamicBatcher::estimatedService(std::int64_t rows) const
{
    return cfg_.service_base +
        cfg_.service_per_row * static_cast<Tick>(rows);
}

void
DynamicBatcher::add(const ClusterRequest &req)
{
    MTIA_CHECK_GT(req.candidates, 0)
        << ": batched request with no candidate rows";
    if (!open_batch_) {
        open_ = ClusterBatch{};
        open_.id = next_id_++;
        open_.open_time = eq_.now();
        open_.oldest_arrival = req.arrival;
        open_batch_ = true;
    }
    open_.requests.push_back(req);
    open_.rows += req.candidates;
    // Failover re-admission can add an OLDER request to a younger open
    // batch; the deadline close keys off the minimum arrival.
    open_.oldest_arrival = std::min(open_.oldest_arrival, req.arrival);
    if (open_.rows >= cfg_.capacity) {
        close(BatchClose::Full);
        return;
    }
    scheduleClose();
}

std::vector<ClusterRequest>
DynamicBatcher::drain()
{
    ++close_generation_; // orphan any pending close timer
    std::vector<ClusterRequest> out = std::move(open_.requests);
    open_ = ClusterBatch{};
    open_batch_ = false;
    return out;
}

void
DynamicBatcher::scheduleClose()
{
    // Oldest member bounds the batch's deadline; the service estimate
    // grows with every add, so recompute and invalidate stale timers.
    // oldest_arrival, not requests.front().arrival: after a failover
    // re-admission the oldest member need not be the first added.
    const Tick now = eq_.now();
    const Tick window_close = open_.open_time + cfg_.window;
    const std::int64_t target = static_cast<std::int64_t>(
        open_.oldest_arrival + cfg_.slo);
    const std::int64_t hold = static_cast<std::int64_t>(
        estimatedService(open_.rows) + cfg_.close_slack);
    const std::int64_t deadline_close_signed = target - hold;
    const Tick deadline_close = deadline_close_signed <= 0
        ? 0
        : static_cast<Tick>(deadline_close_signed);
    const BatchClose reason = deadline_close <= window_close
        ? BatchClose::Deadline
        : BatchClose::Window;
    const Tick close_at =
        std::max(now, std::min(window_close, deadline_close));

    const std::uint64_t gen = ++close_generation_;
    eq_.schedule(close_at, [this, gen, reason]() {
        if (gen != close_generation_ || !open_batch_)
            return; // superseded by a later add, Full close, or drain
        close(reason);
    });
}

void
DynamicBatcher::close(BatchClose reason)
{
    MTIA_DCHECK(open_batch_) << ": closing with no open batch";
    ++close_generation_; // orphan the pending timer, if any
    ClusterBatch batch = std::move(open_);
    open_ = ClusterBatch{};
    open_batch_ = false;

    batch.dispatch_time = eq_.now();
    batch.reason = reason;
    ++stats_.batches;
    stats_.requests += batch.requests.size();
    switch (reason) {
    case BatchClose::Full:
        ++stats_.closed_full;
        break;
    case BatchClose::Deadline:
        ++stats_.closed_deadline;
        break;
    case BatchClose::Window:
        ++stats_.closed_window;
        break;
    }
    on_dispatch_(std::move(batch));
}

} // namespace mtia
