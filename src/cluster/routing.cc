#include "cluster/routing.h"

#include <algorithm>

#include "core/check.h"

namespace mtia {

namespace {

/** splitmix64 finalizer: the repo's standard cheap mixing function. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Domain separation between shard keys and vnode positions: without
 * it, mix64(shard) equals the replica-0 vnode hash mix64((0 << 32) |
 * v) whenever shard == v, and every small shard id lands exactly on a
 * replica-0 vnode. The salt's high bit keeps the key preimage space
 * disjoint from the (replica << 32) | vnode preimage space.
 */
constexpr std::uint64_t kShardKeySalt = 0xf00d5eedcafef00dull;

} // namespace

unsigned
LeastLoadedPolicy::route(const ClusterRequest &req,
                         const std::vector<ReplicaLoadView> &view)
{
    (void)req;
    MTIA_CHECK(!view.empty()) << ": routing over an empty cluster";
    unsigned best = view.size();
    for (unsigned r = 0; r < view.size(); ++r) {
        if (!view[r].routable)
            continue;
        // Strict < keeps ties on the lowest index: deterministic.
        if (best == view.size() ||
            view[r].outstanding_rows < view[best].outstanding_rows)
            best = r;
    }
    MTIA_CHECK_LT(best, view.size())
        << ": no routable replica (caller must drop instead)";
    return best;
}

ShardHashPolicy::ShardHashPolicy(unsigned replicas, unsigned vnodes)
{
    MTIA_CHECK_GT(replicas, 0u) << ": hash ring needs replicas";
    MTIA_CHECK_GT(vnodes, 0u) << ": hash ring needs virtual nodes";
    ring_.reserve(static_cast<std::size_t>(replicas) * vnodes);
    for (unsigned r = 0; r < replicas; ++r)
        for (unsigned v = 0; v < vnodes; ++v)
            ring_.push_back(
                {mix64((static_cast<std::uint64_t>(r) << 32) | v), r});
    std::sort(ring_.begin(), ring_.end(),
              [](const VNode &a, const VNode &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.replica < b.replica;
              });
}

unsigned
ShardHashPolicy::route(const ClusterRequest &req,
                       const std::vector<ReplicaLoadView> &view)
{
    MTIA_CHECK(!view.empty()) << ": routing over an empty cluster";
    const std::uint64_t key = mix64(kShardKeySalt ^ req.home_shard);
    // First vnode at or clockwise of the key...
    std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(ring_.begin(), ring_.end(), key,
                         [](const VNode &v, std::uint64_t k) {
                             return v.hash < k;
                         }) -
        ring_.begin());
    // A key hashing past the last vnode wraps to the ring's first
    // vnode — lower_bound returning end() (pos == ring_.size()) is
    // the normal clockwise wrap, not a miss.
    if (pos == ring_.size())
        pos = 0;
    // ...then walk the ring until the owner is routable, so a dead
    // replica only sheds the keys that hashed to it. The walk visits
    // every vnode exactly once (explicit wrap, bounded by the ring
    // size), so with all-but-one replicas Down it always reaches the
    // survivor's vnodes — including the first vnode of the ring when
    // the walk started past it.
    for (std::size_t step = 0; step < ring_.size(); ++step) {
        const VNode &v = ring_[pos];
        if (++pos == ring_.size())
            pos = 0;
        MTIA_DCHECK_LT(v.replica, view.size())
            << ": ring built for a different cluster size";
        if (view[v.replica].routable)
            return v.replica;
    }
    MTIA_CHECK(false)
        << ": no routable replica (caller must drop instead)";
    return 0;
}

const char *
routingPolicyKindName(RoutingPolicyKind kind)
{
    switch (kind) {
    case RoutingPolicyKind::LeastLoaded:
        return "least_loaded";
    case RoutingPolicyKind::ShardHash:
        return "shard_hash";
    }
    MTIA_UNREACHABLE("unknown RoutingPolicyKind");
}

std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(RoutingPolicyKind kind, unsigned replicas)
{
    switch (kind) {
    case RoutingPolicyKind::LeastLoaded:
        return std::make_unique<LeastLoadedPolicy>();
    case RoutingPolicyKind::ShardHash:
        return std::make_unique<ShardHashPolicy>(replicas);
    }
    MTIA_UNREACHABLE("unknown RoutingPolicyKind");
}

} // namespace mtia
