#ifndef MTIA_CLUSTER_CHAOS_H_
#define MTIA_CLUSTER_CHAOS_H_

/**
 * @file
 * Chaos injection for cluster runs: replica kills plus ECC error
 * storms whose consequence mix comes from the Section 5.1 injection
 * campaigns (fleet/memory_error_study.h) — the paper's
 * productionization story is exactly this intersection of serving and
 * reliability.
 *
 * The whole timeline is pre-generated as a pure function of
 * (params, replica count, duration, rng): kills arrive as a
 * cluster-wide Poisson process; each replica runs an independent
 * storm process (Rng::fork substream per replica) during which ECC
 * error events arrive at an elevated rate; every error picks a model
 * memory region and draws its serving-visible consequence from that
 * region's campaign-measured outcome distribution. Pre-generation
 * keeps chaos replayable and byte-identical at any thread count: the
 * simulator merely schedules the fixed event list.
 *
 * Consequence mapping in the cluster sim:
 *   Benign      -> counter only
 *   Corrupted   -> response-quality counter (request still completes)
 *   NaN         -> retry: the chip re-runs part of the batch (latency)
 *   OutOfBounds -> crash-equivalent: the replica dies (failover path)
 */

#include <cstdint>
#include <vector>

#include "mem/error_injector.h"
#include "sim/random.h"
#include "sim/types.h"

namespace mtia {

/** What one chaos event does to the cluster. */
enum class ChaosKind : std::uint8_t { ReplicaKill, EccError };

/** One pre-generated chaos event. */
struct ChaosEvent
{
    Tick time = 0;
    unsigned replica = 0;
    ChaosKind kind = ChaosKind::ReplicaKill;
    /** ECC events only: region hit and classified consequence. */
    MemRegion region = MemRegion::DenseWeights;
    ErrorOutcome outcome = ErrorOutcome::Benign;
};

/** Chaos-mode knobs. */
struct ChaosParams
{
    bool enabled = false;
    /** Mean seconds between replica kills, cluster-wide. 0 = none. */
    double mean_kill_interval_s = 5.0;
    /** Mean seconds between ECC storms, per replica. 0 = none. */
    double mean_storm_interval_s = 2.0;
    /** Mean storm length in seconds (exponential). */
    double mean_storm_duration_s = 0.5;
    /** ECC error events per second while a storm is active. */
    double storm_error_rate_s = 200.0;
    /** Injection-campaign trials per region feeding the outcome mix. */
    int study_trials = 120;
};

/**
 * Build the deterministic chaos timeline for one run, sorted by
 * (time, generation order). @p rng is taken by value: the caller's
 * stream is not advanced, mirroring the Rng::fork discipline.
 */
std::vector<ChaosEvent> buildChaosTimeline(const ChaosParams &params,
                                           unsigned replicas,
                                           Tick duration, Rng rng);

} // namespace mtia

#endif // MTIA_CLUSTER_CHAOS_H_
