#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "core/check.h"
#include "core/parallel.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace mtia {

namespace {

/** Completion callback of one chip job (move-only, inline-sized). */
using JobDone = InlineFunction<void(Tick)>;

/** One FIFO chip executing gather / merge / retry jobs. */
struct SimChip
{
    std::deque<Tick> durations;
    std::deque<JobDone> queue;
    /** Parked completion of the executing job (one at a time), so
     * scheduled events capture only indices and stay inline. */
    JobDone inflight;
    bool busy = false;
    Tick busy_accum = 0;
};

/** Join counter: a batch's gathers across chips, then one merge. */
struct BatchJoin
{
    unsigned remaining = 0;
    std::uint64_t id = 0;
    std::int64_t rows = 0;
};

/** One server replica: M chips + a deadline-aware batcher. */
struct SimReplica
{
    bool alive = true;
    /** Bumped on every kill; scheduled chip events carry the epoch
     * they were issued under and no-op on mismatch. */
    std::uint64_t epoch = 0;
    /** Service-time multiplier (warmup_slowdown while warming up). */
    double slowdown = 1.0;
    std::int64_t outstanding_rows = 0;
    std::unique_ptr<DynamicBatcher> batcher;
    std::vector<SimChip> chips;
    /** Dispatched-but-unmerged batches, for failover re-routing.
     * Ordered by batch id so drains re-admit deterministically. */
    std::map<std::uint64_t, std::vector<ClusterRequest>> inflight;
};

/** Latency range for the bounded histograms: 1 us to ~100 s, in ms. */
telemetry::LogHistogram::Config
latencyHistogramConfig()
{
    telemetry::LogHistogram::Config cfg;
    cfg.min_value = 1e-3;
    cfg.max_value = 1e5;
    return cfg;
}

/** One simulation run: all mutable state behind simulateImpl. */
class RunState
{
  public:
    RunState(const ClusterConfig &cfg, double qps, Tick duration,
             std::uint64_t seed, telemetry::Telemetry *tel)
        : cfg_(cfg), qps_(qps), duration_(duration), tel_(tel),
          controller_(cfg.replicas, cfg.health,
                      makeRoutingPolicy(cfg.routing, cfg.replicas)),
          hist_total_(latencyHistogramConfig())
    {
        Rng base(seed);
        Rng trace_rng = base.fork(0);
        ClusterTraceParams tp = cfg_.trace;
        tp.traffic.qps = qps;
        tp.traffic.duration = duration;
        tp.embedding_shards = cfg_.embedding_shards;
        trace_ = generateClusterTrace(trace_rng, tp);
        chaos_ = buildChaosTimeline(cfg_.chaos, cfg_.replicas,
                                    duration, base.fork(1));

        BatcherConfig bcfg = cfg_.batcher;
        bcfg.service_base =
            cfg_.service.merge_base + cfg_.service.gather_base;
        bcfg.service_per_row =
            cfg_.service.gather_per_row + cfg_.service.merge_per_row;
        replicas_.reserve(cfg_.replicas);
        for (unsigned r = 0; r < cfg_.replicas; ++r) {
            auto rep = std::make_unique<SimReplica>();
            rep->chips.resize(cfg_.chips_per_replica);
            rep->batcher = std::make_unique<DynamicBatcher>(
                eq_, bcfg, [this, r](ClusterBatch &&batch) {
                    dispatchBatch(r, std::move(batch));
                });
            replicas_.push_back(std::move(rep));
        }
        shard_rows_.assign(cfg_.embedding_shards, 0);

        reg_total_ = nullptr;
        if (tel_ != nullptr)
            reg_total_ = &tel_->metrics.histogram(
                "cluster.latency_ms", {{"class", "total"}},
                latencyHistogramConfig());
    }

    ClusterResult run();

  private:
    void recordLatency(double ms)
    {
        hist_total_.add(ms);
        if (reg_total_ != nullptr)
            reg_total_->add(ms);
    }

    std::vector<std::int64_t> outstandingRows() const
    {
        std::vector<std::int64_t> rows(replicas_.size());
        for (std::size_t r = 0; r < replicas_.size(); ++r)
            rows[r] = replicas_[r]->outstanding_rows;
        return rows;
    }

    void admit(const ClusterRequest &req)
    {
        const unsigned idx = controller_.route(req, outstandingRows());
        if (idx >= controller_.replicas()) {
            ++dropped_; // total outage: nothing routable
            return;
        }
        SimReplica &rep = *replicas_[idx];
        rep.outstanding_rows += req.candidates;
        rep.batcher->add(req);
    }

    void enqueueChipJob(unsigned rep_idx, unsigned chip_idx, Tick dur,
                        JobDone done)
    {
        SimChip &chip = replicas_[rep_idx]->chips[chip_idx];
        chip.durations.push_back(dur);
        chip.queue.push_back(std::move(done));
        pump(rep_idx, chip_idx);
    }

    void pump(unsigned rep_idx, unsigned chip_idx)
    {
        SimReplica &rep = *replicas_[rep_idx];
        if (!rep.alive)
            return;
        SimChip &chip = rep.chips[chip_idx];
        if (chip.busy || chip.durations.empty())
            return;
        chip.busy = true;
        // Warm-up slows the job at its start time.
        const Tick dur = static_cast<Tick>(
            static_cast<double>(chip.durations.front()) * rep.slowdown);
        chip.durations.pop_front();
        chip.inflight = std::move(chip.queue.front());
        chip.queue.pop_front();
        chip.busy_accum += dur;
        const std::uint64_t epoch = rep.epoch;
        eq_.scheduleAfter(dur, [this, rep_idx, chip_idx, epoch]() {
            SimReplica &r = *replicas_[rep_idx];
            if (!r.alive || r.epoch != epoch)
                return;
            JobDone fire = std::move(r.chips[chip_idx].inflight);
            fire(eq_.now());
        });
        eq_.scheduleAfter(
            dur + cfg_.service.dispatch_gap,
            [this, rep_idx, chip_idx, epoch]() {
                SimReplica &r = *replicas_[rep_idx];
                if (!r.alive || r.epoch != epoch)
                    return;
                r.chips[chip_idx].busy = false;
                pump(rep_idx, chip_idx);
            });
    }

    void dispatchBatch(unsigned rep_idx, ClusterBatch &&batch)
    {
        SimReplica &rep = *replicas_[rep_idx];
        const std::uint64_t id = batch.id;
        const std::int64_t rows = batch.rows;
        // Per-shard row footprint of this batch.
        std::vector<std::int64_t> rows_per_shard(cfg_.embedding_shards,
                                                 0);
        for (const ClusterRequest &r : batch.requests)
            rows_per_shard[r.home_shard] += r.candidates;
        rep.inflight.emplace(id, std::move(batch.requests));
        if (!rep.alive)
            return; // lost until the controller detects and re-routes

        // Executed load lands on the shard map (re-executions after a
        // failover count again: that re-work is real).
        for (unsigned s = 0; s < cfg_.embedding_shards; ++s)
            shard_rows_[s] += rows_per_shard[s];

        // Gather on every chip owning a shard this batch touches...
        joins_.push_back(std::make_unique<BatchJoin>());
        BatchJoin *join = joins_.back().get();
        join->id = id;
        join->rows = rows;
        std::vector<Tick> chip_gather(cfg_.chips_per_replica, 0);
        for (unsigned s = 0; s < cfg_.embedding_shards; ++s) {
            if (rows_per_shard[s] == 0)
                continue;
            const unsigned chip = s % cfg_.chips_per_replica;
            chip_gather[chip] += cfg_.service.gather_per_row *
                static_cast<Tick>(rows_per_shard[s]);
        }
        for (unsigned c = 0; c < cfg_.chips_per_replica; ++c)
            if (chip_gather[c] > 0)
                ++join->remaining;
        MTIA_DCHECK_GT(join->remaining, 0u)
            << ": dispatched a batch with no gather work";
        for (unsigned c = 0; c < cfg_.chips_per_replica; ++c) {
            if (chip_gather[c] == 0)
                continue;
            const Tick dur = cfg_.service.gather_base + chip_gather[c];
            enqueueChipJob(rep_idx, c, dur,
                           [this, rep_idx, join](Tick) {
                               if (--join->remaining == 0)
                                   scheduleMerge(rep_idx, join);
                           });
        }
    }

    void scheduleMerge(unsigned rep_idx, BatchJoin *join)
    {
        // ...then one merge on the batch's home chip.
        const unsigned chip = static_cast<unsigned>(
            join->id % cfg_.chips_per_replica);
        const Tick dur = cfg_.service.merge_base +
            cfg_.service.merge_per_row * static_cast<Tick>(join->rows);
        enqueueChipJob(
            rep_idx, chip, dur,
            [this, rep_idx, id = join->id, rows = join->rows](Tick end) {
                completeBatch(rep_idx, id, rows, end);
            });
    }

    void completeBatch(unsigned rep_idx, std::uint64_t id,
                       std::int64_t rows, Tick end)
    {
        SimReplica &rep = *replicas_[rep_idx];
        auto it = rep.inflight.find(id);
        if (it == rep.inflight.end())
            return; // drained by a failover before the merge landed
        for (const ClusterRequest &r : it->second) {
            const Tick latency = end - r.arrival;
            recordLatency(toMillis(latency));
            ++completed_;
            if (latency <= cfg_.batcher.slo)
                ++completed_in_slo_;
            if (end <= duration_)
                ++completed_in_window_;
        }
        rep.outstanding_rows -= rows;
        MTIA_DCHECK_GE(rep.outstanding_rows, 0)
            << ": batch completion over-credited a replica";
        rep.inflight.erase(it);
    }

    void killReplica(unsigned r, Tick now)
    {
        SimReplica &rep = *replicas_[r];
        if (!rep.alive)
            return; // already dead: chaos double-kill is a no-op
        rep.alive = false;
        ++rep.epoch;
        for (SimChip &chip : rep.chips) {
            chip.durations.clear();
            chip.queue.clear();
            chip.inflight = JobDone();
            chip.busy = false;
        }
        controller_.noteDeath(r, now);
        ++kills_;
    }

    /** Heartbeat-timeout path: drain -> re-route -> schedule restart. */
    void handleDetectedDown(unsigned r, Tick now)
    {
        SimReplica &rep = *replicas_[r];
        std::vector<ClusterRequest> pending = rep.batcher->drain();
        for (auto &[id, reqs] : rep.inflight)
            for (ClusterRequest &req : reqs)
                pending.push_back(req);
        rep.inflight.clear();
        rep.outstanding_rows = 0;
        rerouted_ += pending.size();
        for (const ClusterRequest &req : pending)
            admit(req);
        const std::uint64_t epoch = rep.epoch;
        eq_.schedule(now + cfg_.health.restart_delay,
                     [this, r, epoch]() { restartReplica(r, epoch); });
    }

    void restartReplica(unsigned r, std::uint64_t epoch)
    {
        SimReplica &rep = *replicas_[r];
        if (rep.epoch != epoch)
            return; // superseded by a later kill cycle
        rep.alive = true;
        rep.slowdown = cfg_.health.warmup_slowdown;
        controller_.markWarmingUp(r, eq_.now());
        eq_.scheduleAfter(cfg_.health.warmup, [this, r, epoch]() {
            SimReplica &warmed = *replicas_[r];
            if (warmed.epoch != epoch || !warmed.alive)
                return; // killed again mid-warm-up
            warmed.slowdown = 1.0;
            controller_.markHealthy(r, eq_.now());
        });
    }

    void handleChaos(const ChaosEvent &e)
    {
        SimReplica &rep = *replicas_[e.replica];
        if (e.kind == ChaosKind::ReplicaKill) {
            killReplica(e.replica, eq_.now());
            return;
        }
        if (!rep.alive)
            return; // a dead replica takes no new errors
        ++ecc_errors_;
        switch (e.outcome) {
        case ErrorOutcome::Benign:
            ++ecc_benign_;
            break;
        case ErrorOutcome::Corrupted:
            // Wrong-but-finite outputs: the response completes and the
            // quality counter records the blast radius.
            ++ecc_corrupted_;
            break;
        case ErrorOutcome::NaN: {
            // NaN consequence: the runtime re-executes the affected
            // slice, costing chip time on the replica.
            ++ecc_retries_;
            const unsigned chip = static_cast<unsigned>(
                e.time % cfg_.chips_per_replica);
            enqueueChipJob(e.replica, chip, cfg_.service.retry_penalty,
                           JobDone([](Tick) {}));
            break;
        }
        case ErrorOutcome::OutOfBounds:
            // Crash-equivalent index fault: the replica dies and the
            // failover machinery takes over.
            ++ecc_crashes_;
            killReplica(e.replica, eq_.now());
            break;
        }
    }

    void scheduleHeartbeat(unsigned r, Tick t)
    {
        if (t >= duration_)
            return;
        eq_.schedule(t, [this, r, t]() {
            if (replicas_[r]->alive)
                controller_.heartbeat(r, eq_.now());
            scheduleHeartbeat(r, t + cfg_.health.heartbeat_interval);
        });
    }

    void scheduleHealthSweep(Tick t)
    {
        if (t >= duration_)
            return;
        eq_.schedule(t, [this, t]() {
            const std::vector<unsigned> down =
                controller_.checkHealth(eq_.now());
            for (const unsigned r : down)
                handleDetectedDown(r, eq_.now());
            scheduleHealthSweep(t + cfg_.health.heartbeat_interval);
        });
    }

    const ClusterConfig &cfg_;
    double qps_;
    Tick duration_;
    telemetry::Telemetry *tel_;

    EventQueue eq_;
    ClusterController controller_;
    std::vector<std::unique_ptr<SimReplica>> replicas_;
    std::vector<std::unique_ptr<BatchJoin>> joins_;
    std::vector<ClusterRequest> trace_;
    std::vector<ChaosEvent> chaos_;
    std::vector<std::int64_t> shard_rows_;

    telemetry::LogHistogram hist_total_;
    telemetry::LogHistogram *reg_total_ = nullptr;

    std::uint64_t completed_ = 0;
    std::uint64_t completed_in_slo_ = 0;
    std::uint64_t completed_in_window_ = 0;
    std::uint64_t rerouted_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t ecc_errors_ = 0;
    std::uint64_t ecc_benign_ = 0;
    std::uint64_t ecc_corrupted_ = 0;
    std::uint64_t ecc_retries_ = 0;
    std::uint64_t ecc_crashes_ = 0;
    unsigned kills_ = 0;
};

ClusterResult
RunState::run()
{
    // Arrivals replay the fixed trace; chaos replays its fixed
    // timeline; heartbeats and health sweeps tick until the trace
    // ends (sweeps offset half an interval so acks land first).
    for (std::size_t i = 0; i < trace_.size(); ++i)
        eq_.schedule(trace_[i].arrival,
                     [this, i]() { admit(trace_[i]); });
    for (std::size_t i = 0; i < chaos_.size(); ++i)
        eq_.schedule(chaos_[i].time,
                     [this, i]() { handleChaos(chaos_[i]); });
    for (unsigned r = 0; r < cfg_.replicas; ++r)
        scheduleHeartbeat(r, cfg_.health.heartbeat_interval);
    scheduleHealthSweep(cfg_.health.heartbeat_interval +
                        cfg_.health.heartbeat_interval / 2);

    eq_.run();

    ClusterResult out;
    out.policy = routingPolicyKindName(cfg_.routing);
    out.offered_qps = qps_;
    out.arrivals = trace_.size();
    out.completed = completed_;
    out.completed_in_slo = completed_in_slo_;
    out.completed_qps = static_cast<double>(completed_in_window_) /
        toSeconds(duration_);
    out.rerouted = rerouted_;
    out.dropped = dropped_;
    if (!hist_total_.empty()) {
        out.p50_ms = hist_total_.percentile(50);
        out.p99_ms = hist_total_.percentile(99);
    }
    out.slo_attainment = out.arrivals == 0
        ? 0.0
        : static_cast<double>(completed_in_slo_) /
            static_cast<double>(out.arrivals);
    out.shard_rows = shard_rows_;
    out.shard_skew = shardSkew(shard_rows_);
    for (const auto &rep : replicas_) {
        const BatcherStats &bs = rep->batcher->stats();
        out.batches += bs.batches;
        out.batches_full += bs.closed_full;
        out.batches_deadline += bs.closed_deadline;
        out.batches_window += bs.closed_window;
    }
    out.kills = kills_;
    const std::vector<FailoverRecord> &fo = controller_.failovers();
    out.failovers = static_cast<unsigned>(fo.size());
    double detect_sum = 0.0;
    double recover_sum = 0.0;
    std::uint64_t recovered = 0;
    for (const FailoverRecord &rec : fo) {
        detect_sum += toMillis(rec.detected - rec.died);
        if (rec.restored != 0) {
            const double rec_ms = toMillis(rec.restored - rec.died);
            recover_sum += rec_ms;
            out.max_recovery_ms = std::max(out.max_recovery_ms, rec_ms);
            ++recovered;
        }
    }
    if (!fo.empty())
        out.mean_detection_ms =
            detect_sum / static_cast<double>(fo.size());
    if (recovered != 0)
        out.mean_recovery_ms =
            recover_sum / static_cast<double>(recovered);
    out.ecc_errors = ecc_errors_;
    out.ecc_benign = ecc_benign_;
    out.ecc_corrupted = ecc_corrupted_;
    out.ecc_retries = ecc_retries_;
    out.ecc_crashes = ecc_crashes_;

    if (tel_ != nullptr) {
        auto &m = tel_->metrics;
        m.counter("cluster.requests", {{"event", "arrived"}})
            .inc(out.arrivals);
        m.counter("cluster.requests", {{"event", "completed"}})
            .inc(completed_);
        m.counter("cluster.requests", {{"event", "rerouted"}})
            .inc(rerouted_);
        m.counter("cluster.requests", {{"event", "dropped"}})
            .inc(dropped_);
        m.counter("cluster.ecc", {{"outcome", "benign"}})
            .inc(ecc_benign_);
        m.counter("cluster.ecc", {{"outcome", "corrupted"}})
            .inc(ecc_corrupted_);
        m.counter("cluster.ecc", {{"outcome", "retry"}})
            .inc(ecc_retries_);
        m.counter("cluster.ecc", {{"outcome", "crash"}})
            .inc(ecc_crashes_);
        m.counter("cluster.failovers").inc(out.failovers);
        m.counter("sim.events_executed").inc(eq_.executed());
        eq_.publishMetrics(m);
    }
    return out;
}

} // namespace

std::string
ClusterResult::summary() const
{
    char line[192];
    std::string out;
    const auto add = [&out, &line](int n) {
        MTIA_DCHECK_GT(n, 0) << ": summary formatting failed";
        out.append(line, static_cast<std::size_t>(n));
    };
    add(std::snprintf(line, sizeof line, "policy=%s\n", policy.c_str()));
    add(std::snprintf(line, sizeof line,
                      "offered_qps=%.6f completed_qps=%.6f\n",
                      offered_qps, completed_qps));
    add(std::snprintf(
        line, sizeof line,
        "arrivals=%" PRIu64 " completed=%" PRIu64
        " completed_in_slo=%" PRIu64 " rerouted=%" PRIu64
        " dropped=%" PRIu64 "\n",
        arrivals, completed, completed_in_slo, rerouted, dropped));
    add(std::snprintf(line, sizeof line,
                      "p50_ms=%.6f p99_ms=%.6f slo_attainment=%.6f\n",
                      p50_ms, p99_ms, slo_attainment));
    out += "shard_rows=[";
    for (std::size_t s = 0; s < shard_rows.size(); ++s) {
        add(std::snprintf(line, sizeof line, "%s%" PRId64,
                          s == 0 ? "" : ",", shard_rows[s]));
    }
    add(std::snprintf(line, sizeof line, "] shard_skew=%.6f\n",
                      shard_skew));
    add(std::snprintf(
        line, sizeof line,
        "batches=%" PRIu64 " full=%" PRIu64 " deadline=%" PRIu64
        " window=%" PRIu64 "\n",
        batches, batches_full, batches_deadline, batches_window));
    add(std::snprintf(line, sizeof line,
                      "kills=%u failovers=%u detection_ms=%.6f "
                      "recovery_ms=%.6f max_recovery_ms=%.6f\n",
                      kills, failovers, mean_detection_ms,
                      mean_recovery_ms, max_recovery_ms));
    add(std::snprintf(
        line, sizeof line,
        "ecc=%" PRIu64 " benign=%" PRIu64 " corrupted=%" PRIu64
        " retries=%" PRIu64 " crashes=%" PRIu64 "\n",
        ecc_errors, ecc_benign, ecc_corrupted, ecc_retries,
        ecc_crashes));
    return out;
}

ClusterSimulator::ClusterSimulator(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    MTIA_CHECK_GT(cfg_.replicas, 0u)
        << ": cluster needs at least one replica";
    MTIA_CHECK_GT(cfg_.chips_per_replica, 0u)
        << ": replicas need at least one chip";
    MTIA_CHECK_GT(cfg_.embedding_shards, 0u)
        << ": cluster needs at least one embedding shard";
    MTIA_CHECK_GT(cfg_.batcher.slo, 0u) << ": cluster needs an SLO";
}

ClusterResult
ClusterSimulator::simulate(double qps, Tick duration,
                           std::uint64_t seed) const
{
    return simulateImpl(qps, duration, seed, telemetry_);
}

ClusterResult
ClusterSimulator::simulateImpl(double qps, Tick duration,
                               std::uint64_t seed,
                               telemetry::Telemetry *tel) const
{
    MTIA_CHECK_GT(qps, 0.0) << ": cluster offered load";
    MTIA_CHECK_GT(duration, 0u) << ": cluster sim duration";
    RunState state(cfg_, qps, duration, seed, tel);
    return state.run();
}

std::vector<ClusterResult>
ClusterSimulator::sweep(const std::vector<double> &qps, Tick duration,
                        std::uint64_t seed) const
{
    const Rng base(seed);
    // One fork substream per load point; telemetry-detached because
    // the registry is shared mutable state across lanes.
    return parallelMap(qps.size(), [&](std::size_t i) {
        return simulateImpl(qps[i], duration, base.fork(i).next(),
                            nullptr);
    });
}

} // namespace mtia
