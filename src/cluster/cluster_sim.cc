#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "core/check.h"
#include "core/parallel.h"
#include "sim/event_queue.h"
#include "sim/parallel_des.h"
#include "telemetry/telemetry.h"

namespace mtia {

namespace {

/** Completion callback of one chip job (move-only, inline-sized). */
using JobDone = InlineFunction<void(Tick)>;

/** One FIFO chip executing gather / merge / retry jobs. */
struct SimChip
{
    std::deque<Tick> durations;
    std::deque<JobDone> queue;
    /** Parked completion of the executing job (one at a time), so
     * scheduled events capture only indices and stay inline. */
    JobDone inflight;
    bool busy = false;
    Tick busy_accum = 0;
};

/** Join counter: a batch's gathers across chips, then one merge. */
struct BatchJoin
{
    unsigned remaining = 0;
    std::uint64_t id = 0;
    std::int64_t rows = 0;
};

/** Latency range for the bounded histograms: 1 us to ~100 s, in ms. */
telemetry::LogHistogram::Config
latencyHistogramConfig()
{
    telemetry::LogHistogram::Config cfg;
    cfg.min_value = 1e-3;
    cfg.max_value = 1e5;
    return cfg;
}

/**
 * One server replica: M chips + a deadline-aware batcher, plus every
 * counter its requests touch. A replica IS a ParallelDes partition:
 * all of this state is mutated only by events on the replica's own
 * queue, so replicas run concurrently with no sharing. The local
 * counters and histogram are merged (in replica index order) into the
 * ClusterResult after the run.
 */
struct SimReplica
{
    bool alive = true;
    /** Bumped on every kill; scheduled chip events carry the epoch
     * they were issued under and no-op on mismatch. */
    std::uint64_t epoch = 0;
    /** Service-time multiplier (warmup_slowdown while warming up). */
    double slowdown = 1.0;
    std::unique_ptr<DynamicBatcher> batcher;
    std::vector<SimChip> chips;
    /** Dispatched-but-unmerged batches, for failover re-routing.
     * Ordered by batch id so drains re-admit deterministically. */
    std::map<std::uint64_t, std::vector<ClusterRequest>> inflight;
    std::vector<std::unique_ptr<BatchJoin>> joins;

    // Replica-local results, merged after the run.
    telemetry::LogHistogram hist{latencyHistogramConfig()};
    std::vector<std::int64_t> shard_rows;
    std::uint64_t completed = 0;
    std::uint64_t completed_in_slo = 0;
    std::uint64_t completed_in_window = 0;
    std::uint64_t ecc_errors = 0;
    std::uint64_t ecc_benign = 0;
    std::uint64_t ecc_corrupted = 0;
    std::uint64_t ecc_retries = 0;
    std::uint64_t ecc_crashes = 0;
    unsigned kills = 0;
};

/**
 * One simulation run, partitioned over a ParallelDes: partition 0 is
 * the controller plane (trace admission, routing, health sweeps,
 * failover orchestration) and partition 1 + r is replica r. The two
 * sides interact ONLY through des_.post() messages carrying the
 * fabric's one-way latency, which equals the epoch width:
 *
 *   controller -> replica: request admission, drain command after a
 *                          detected failover, restart command
 *   replica -> controller: heartbeat acks, death notices (true death
 *                          tick), batch-completion row credits, drain
 *                          responses (requests to re-route), warm-up
 *                          completion acks
 *
 * The controller routes on its OWN view of per-replica outstanding
 * rows (incremented at route time, decremented when completion / drain
 * credits arrive a latency later) — the usual stale-view routing of a
 * real distributed serving tier, and the property that keeps every
 * partition's state single-writer.
 */
class RunState
{
  public:
    RunState(const ClusterConfig &cfg, double qps, Tick duration,
             std::uint64_t seed, telemetry::Telemetry *tel)
        : cfg_(cfg), qps_(qps), duration_(duration), tel_(tel),
          net_(cfg.fabric.latency()), des_(1 + cfg.replicas, net_),
          controller_(cfg.replicas, cfg.health,
                      makeRoutingPolicy(cfg.routing, cfg.replicas)),
          hist_total_(latencyHistogramConfig())
    {
        Rng base(seed);
        Rng trace_rng = base.fork(0);
        ClusterTraceParams tp = cfg_.trace;
        tp.traffic.qps = qps;
        tp.traffic.duration = duration;
        tp.embedding_shards = cfg_.embedding_shards;
        trace_ = generateClusterTrace(trace_rng, tp);
        chaos_ = buildChaosTimeline(cfg_.chaos, cfg_.replicas,
                                    duration, base.fork(1));

        BatcherConfig bcfg = cfg_.batcher;
        bcfg.service_base =
            cfg_.service.merge_base + cfg_.service.gather_base;
        bcfg.service_per_row =
            cfg_.service.gather_per_row + cfg_.service.merge_per_row;
        replicas_.reserve(cfg_.replicas);
        for (unsigned r = 0; r < cfg_.replicas; ++r) {
            auto rep = std::make_unique<SimReplica>();
            rep->chips.resize(cfg_.chips_per_replica);
            rep->shard_rows.assign(cfg_.embedding_shards, 0);
            rep->batcher = std::make_unique<DynamicBatcher>(
                repq(r), bcfg, [this, r](ClusterBatch &&batch) {
                    dispatchBatch(r, std::move(batch));
                });
            replicas_.push_back(std::move(rep));
        }
        ctrl_outstanding_.assign(cfg_.replicas, 0);
        ctrl_cycle_.assign(cfg_.replicas, 0);
        shard_rows_.assign(cfg_.embedding_shards, 0);

        // Heartbeats and health sweeps outlive the trace by the worst
        // case detect-drain-reroute span, so a replica killed just
        // before the end is still detected and its pending requests
        // still complete (conservation) — while live replicas keep
        // acking and are never spuriously declared Down.
        hb_until_ = duration_ +
            cfg_.health.heartbeat_interval *
                (cfg_.health.miss_threshold + 2) +
            2 * net_;

        reg_total_ = nullptr;
        if (tel_ != nullptr)
            reg_total_ = &tel_->metrics.histogram(
                "cluster.latency_ms", {{"class", "total"}},
                latencyHistogramConfig());
    }

    ClusterResult run();

  private:
    /** The controller plane is partition 0... */
    static constexpr unsigned kCtrl = 0;
    /** ...and replica @p r is partition 1 + r. */
    static unsigned pid(unsigned r) { return 1 + r; }

    EventQueue &ctrlq() { return des_.queue(kCtrl); }
    EventQueue &repq(unsigned r) { return des_.queue(pid(r)); }

    // ------------------------------------------- controller partition

    /** Route one request (fresh arrival or failover re-admission). */
    void admit(const ClusterRequest &req)
    {
        const unsigned idx = controller_.route(req, ctrl_outstanding_);
        if (idx >= controller_.replicas()) {
            ++dropped_; // total outage: nothing routable
            return;
        }
        ctrl_outstanding_[idx] += req.candidates;
        des_.post(kCtrl, pid(idx), ctrlq().now() + net_,
                  [this, idx, req]() {
                      replicas_[idx]->batcher->add(req);
                  });
    }

    /** A sweep declared @p r Down: drain it, schedule its restart. */
    void handleDetectedDown(unsigned r, Tick now)
    {
        const std::uint64_t cycle = ++ctrl_cycle_[r];
        des_.post(kCtrl, pid(r), now + net_,
                  [this, r]() { drainReplica(r); });
        ctrlq().schedule(now + cfg_.health.restart_delay,
                         [this, r, cycle]() { beginRestart(r, cycle); });
    }

    void beginRestart(unsigned r, std::uint64_t cycle)
    {
        if (ctrl_cycle_[r] != cycle)
            return; // superseded by a later detection cycle
        // Cycle match means no later detection ran, so the replica is
        // still Down on the controller and markWarmingUp is legal.
        controller_.markWarmingUp(r, ctrlq().now());
        des_.post(kCtrl, pid(r), ctrlq().now() + net_,
                  [this, r, cycle]() { restartReplica(r, cycle); });
    }

    void scheduleHealthSweep(Tick t)
    {
        if (t >= hb_until_)
            return;
        ctrlq().schedule(t, [this, t]() {
            const std::vector<unsigned> down =
                controller_.checkHealth(ctrlq().now());
            for (const unsigned r : down)
                handleDetectedDown(r, ctrlq().now());
            scheduleHealthSweep(t + cfg_.health.heartbeat_interval);
        });
    }

    // ---------------------------------------------- replica partition

    void enqueueChipJob(unsigned rep_idx, unsigned chip_idx, Tick dur,
                        JobDone done)
    {
        SimChip &chip = replicas_[rep_idx]->chips[chip_idx];
        chip.durations.push_back(dur);
        chip.queue.push_back(std::move(done));
        pump(rep_idx, chip_idx);
    }

    void pump(unsigned rep_idx, unsigned chip_idx)
    {
        SimReplica &rep = *replicas_[rep_idx];
        if (!rep.alive)
            return;
        SimChip &chip = rep.chips[chip_idx];
        if (chip.busy || chip.durations.empty())
            return;
        chip.busy = true;
        // Warm-up slows the job at its start time.
        const Tick dur = static_cast<Tick>(
            static_cast<double>(chip.durations.front()) * rep.slowdown);
        chip.durations.pop_front();
        chip.inflight = std::move(chip.queue.front());
        chip.queue.pop_front();
        chip.busy_accum += dur;
        const std::uint64_t epoch = rep.epoch;
        EventQueue &eq = repq(rep_idx);
        eq.scheduleAfter(dur, [this, rep_idx, chip_idx, epoch]() {
            SimReplica &r = *replicas_[rep_idx];
            if (!r.alive || r.epoch != epoch)
                return;
            JobDone fire = std::move(r.chips[chip_idx].inflight);
            fire(repq(rep_idx).now());
        });
        eq.scheduleAfter(
            dur + cfg_.service.dispatch_gap,
            [this, rep_idx, chip_idx, epoch]() {
                SimReplica &r = *replicas_[rep_idx];
                if (!r.alive || r.epoch != epoch)
                    return;
                r.chips[chip_idx].busy = false;
                pump(rep_idx, chip_idx);
            });
    }

    void dispatchBatch(unsigned rep_idx, ClusterBatch &&batch)
    {
        SimReplica &rep = *replicas_[rep_idx];
        const std::uint64_t id = batch.id;
        const std::int64_t rows = batch.rows;
        // Per-shard row footprint of this batch.
        std::vector<std::int64_t> rows_per_shard(cfg_.embedding_shards,
                                                 0);
        for (const ClusterRequest &r : batch.requests)
            rows_per_shard[r.home_shard] += r.candidates;
        rep.inflight.emplace(id, std::move(batch.requests));
        if (!rep.alive)
            return; // lost until the controller detects and re-routes

        // Executed load lands on the shard map (re-executions after a
        // failover count again: that re-work is real).
        for (unsigned s = 0; s < cfg_.embedding_shards; ++s)
            rep.shard_rows[s] += rows_per_shard[s];

        // Gather on every chip owning a shard this batch touches...
        rep.joins.push_back(std::make_unique<BatchJoin>());
        BatchJoin *join = rep.joins.back().get();
        join->id = id;
        join->rows = rows;
        std::vector<Tick> chip_gather(cfg_.chips_per_replica, 0);
        for (unsigned s = 0; s < cfg_.embedding_shards; ++s) {
            if (rows_per_shard[s] == 0)
                continue;
            const unsigned chip = s % cfg_.chips_per_replica;
            chip_gather[chip] += cfg_.service.gather_per_row *
                static_cast<Tick>(rows_per_shard[s]);
        }
        for (unsigned c = 0; c < cfg_.chips_per_replica; ++c)
            if (chip_gather[c] > 0)
                ++join->remaining;
        MTIA_DCHECK_GT(join->remaining, 0u)
            << ": dispatched a batch with no gather work";
        for (unsigned c = 0; c < cfg_.chips_per_replica; ++c) {
            if (chip_gather[c] == 0)
                continue;
            const Tick dur = cfg_.service.gather_base + chip_gather[c];
            enqueueChipJob(rep_idx, c, dur,
                           [this, rep_idx, join](Tick) {
                               if (--join->remaining == 0)
                                   scheduleMerge(rep_idx, join);
                           });
        }
    }

    void scheduleMerge(unsigned rep_idx, BatchJoin *join)
    {
        // ...then one merge on the batch's home chip.
        const unsigned chip = static_cast<unsigned>(
            join->id % cfg_.chips_per_replica);
        const Tick dur = cfg_.service.merge_base +
            cfg_.service.merge_per_row * static_cast<Tick>(join->rows);
        enqueueChipJob(
            rep_idx, chip, dur,
            [this, rep_idx, id = join->id, rows = join->rows](Tick end) {
                completeBatch(rep_idx, id, rows, end);
            });
    }

    void completeBatch(unsigned rep_idx, std::uint64_t id,
                       std::int64_t rows, Tick end)
    {
        SimReplica &rep = *replicas_[rep_idx];
        auto it = rep.inflight.find(id);
        if (it == rep.inflight.end())
            return; // drained by a failover before the merge landed
        for (const ClusterRequest &r : it->second) {
            const Tick latency = end - r.arrival;
            rep.hist.add(toMillis(latency));
            ++rep.completed;
            if (latency <= cfg_.batcher.slo)
                ++rep.completed_in_slo;
            if (end <= duration_)
                ++rep.completed_in_window;
        }
        rep.inflight.erase(it);
        // Credit the controller's load view a network latency later.
        des_.post(pid(rep_idx), kCtrl, end + net_,
                  [this, rep_idx, rows]() {
                      ctrl_outstanding_[rep_idx] -= rows;
                      MTIA_DCHECK_GE(ctrl_outstanding_[rep_idx], 0)
                          << ": completion over-credited a replica";
                  });
    }

    void killReplica(unsigned r, Tick now)
    {
        SimReplica &rep = *replicas_[r];
        if (!rep.alive)
            return; // already dead: chaos double-kill is a no-op
        rep.alive = false;
        ++rep.epoch;
        for (SimChip &chip : rep.chips) {
            chip.durations.clear();
            chip.queue.clear();
            chip.inflight = JobDone();
            chip.busy = false;
        }
        ++rep.kills;
        // The controller learns the TRUE death tick (for the failover
        // detection-latency stats) one network latency later.
        des_.post(pid(r), kCtrl, now + net_, [this, r, now]() {
            controller_.noteDeath(r, now);
        });
    }

    /** DrainCmd landed: hand every pending request back for re-route. */
    void drainReplica(unsigned r)
    {
        SimReplica &rep = *replicas_[r];
        std::vector<ClusterRequest> pending = rep.batcher->drain();
        for (auto &[id, reqs] : rep.inflight)
            for (ClusterRequest &req : reqs)
                pending.push_back(req);
        rep.inflight.clear();
        // Mailbox FIFO order guarantees every admission the controller
        // sent before the drain command has already landed in the
        // batcher, so this response returns ALL unfinished requests.
        des_.post(pid(r), kCtrl, repq(r).now() + net_,
                  [this, r, pending = std::move(pending)]() {
                      std::int64_t rows = 0;
                      for (const ClusterRequest &req : pending)
                          rows += req.candidates;
                      ctrl_outstanding_[r] -= rows;
                      MTIA_DCHECK_GE(ctrl_outstanding_[r], 0)
                          << ": drain over-credited a replica";
                      rerouted_ += pending.size();
                      for (const ClusterRequest &req : pending)
                          admit(req);
                  });
    }

    void restartReplica(unsigned r, std::uint64_t cycle)
    {
        SimReplica &rep = *replicas_[r];
        MTIA_DCHECK(!rep.alive) << ": restarting a live replica";
        rep.alive = true;
        rep.slowdown = cfg_.health.warmup_slowdown;
        const std::uint64_t epoch = rep.epoch;
        repq(r).scheduleAfter(
            cfg_.health.warmup, [this, r, epoch, cycle]() {
                SimReplica &warmed = *replicas_[r];
                if (!warmed.alive || warmed.epoch != epoch)
                    return; // killed again mid-warm-up
                warmed.slowdown = 1.0;
                des_.post(pid(r), kCtrl, repq(r).now() + net_,
                          [this, r, cycle]() {
                              // Stale acks (superseded cycle, or the
                              // replica already re-detected Down) are
                              // ignored; staleness re-detection owns
                              // the killed-mid-warm-up path.
                              if (ctrl_cycle_[r] != cycle)
                                  return;
                              if (controller_.health(r) ==
                                  ReplicaHealth::WarmingUp)
                                  controller_.markHealthy(
                                      r, ctrlq().now());
                          });
            });
    }

    void handleChaos(const ChaosEvent &e)
    {
        SimReplica &rep = *replicas_[e.replica];
        if (e.kind == ChaosKind::ReplicaKill) {
            killReplica(e.replica, repq(e.replica).now());
            return;
        }
        if (!rep.alive)
            return; // a dead replica takes no new errors
        ++rep.ecc_errors;
        switch (e.outcome) {
        case ErrorOutcome::Benign:
            ++rep.ecc_benign;
            break;
        case ErrorOutcome::Corrupted:
            // Wrong-but-finite outputs: the response completes and the
            // quality counter records the blast radius.
            ++rep.ecc_corrupted;
            break;
        case ErrorOutcome::NaN: {
            // NaN consequence: the runtime re-executes the affected
            // slice, costing chip time on the replica.
            ++rep.ecc_retries;
            const unsigned chip = static_cast<unsigned>(
                e.time % cfg_.chips_per_replica);
            enqueueChipJob(e.replica, chip, cfg_.service.retry_penalty,
                           JobDone([](Tick) {}));
            break;
        }
        case ErrorOutcome::OutOfBounds:
            // Crash-equivalent index fault: the replica dies and the
            // failover machinery takes over.
            ++rep.ecc_crashes;
            killReplica(e.replica, repq(e.replica).now());
            break;
        }
    }

    void scheduleHeartbeat(unsigned r, Tick t)
    {
        if (t >= hb_until_)
            return;
        repq(r).schedule(t, [this, r, t]() {
            if (replicas_[r]->alive)
                des_.post(pid(r), kCtrl, t + net_, [this, r]() {
                    controller_.heartbeat(r, ctrlq().now());
                });
            scheduleHeartbeat(r, t + cfg_.health.heartbeat_interval);
        });
    }

    const ClusterConfig &cfg_;
    double qps_;
    Tick duration_;
    telemetry::Telemetry *tel_;

    /** One-way controller<->replica latency; also the epoch width. */
    Tick net_;
    ParallelDes des_;
    ClusterController controller_;
    std::vector<std::unique_ptr<SimReplica>> replicas_;
    std::vector<ClusterRequest> trace_;
    std::vector<ChaosEvent> chaos_;
    /** Last tick heartbeat / sweep chains stay live (trace + grace). */
    Tick hb_until_ = 0;

    // Controller-partition state: the control plane's LAGGED view of
    // per-replica outstanding rows, and the per-replica failover cycle
    // counter that fences stale restart / warm-up messages.
    std::vector<std::int64_t> ctrl_outstanding_;
    std::vector<std::uint64_t> ctrl_cycle_;
    std::uint64_t rerouted_ = 0;
    std::uint64_t dropped_ = 0;

    // Merged from the replica partitions after the run.
    std::vector<std::int64_t> shard_rows_;
    telemetry::LogHistogram hist_total_;
    telemetry::LogHistogram *reg_total_ = nullptr;
};

ClusterResult
RunState::run()
{
    // Arrivals replay the fixed trace on the controller partition;
    // chaos replays its fixed timeline on the replica it strikes;
    // heartbeats and health sweeps tick until the trace ends plus a
    // grace window (sweeps offset half an interval past the ack
    // arrivals so acks land first).
    for (std::size_t i = 0; i < trace_.size(); ++i)
        ctrlq().schedule(trace_[i].arrival,
                         [this, i]() { admit(trace_[i]); });
    for (std::size_t i = 0; i < chaos_.size(); ++i)
        repq(chaos_[i].replica)
            .schedule(chaos_[i].time,
                      [this, i]() { handleChaos(chaos_[i]); });
    for (unsigned r = 0; r < cfg_.replicas; ++r)
        scheduleHeartbeat(r, cfg_.health.heartbeat_interval);
    scheduleHealthSweep(cfg_.health.heartbeat_interval +
                        cfg_.health.heartbeat_interval / 2 + net_);

    des_.run();

    ClusterResult out;
    out.policy = routingPolicyKindName(cfg_.routing);
    out.offered_qps = qps_;
    out.arrivals = trace_.size();
    out.rerouted = rerouted_;
    out.dropped = dropped_;

    // Replica-local results merge in replica index order — a fixed
    // order, so the merged bytes are lane-count independent.
    std::uint64_t completed_in_window = 0;
    for (const auto &rep : replicas_) {
        hist_total_.merge(rep->hist);
        out.completed += rep->completed;
        out.completed_in_slo += rep->completed_in_slo;
        completed_in_window += rep->completed_in_window;
        for (unsigned s = 0; s < cfg_.embedding_shards; ++s)
            shard_rows_[s] += rep->shard_rows[s];
        out.kills += rep->kills;
        out.ecc_errors += rep->ecc_errors;
        out.ecc_benign += rep->ecc_benign;
        out.ecc_corrupted += rep->ecc_corrupted;
        out.ecc_retries += rep->ecc_retries;
        out.ecc_crashes += rep->ecc_crashes;
        const BatcherStats &bs = rep->batcher->stats();
        out.batches += bs.batches;
        out.batches_full += bs.closed_full;
        out.batches_deadline += bs.closed_deadline;
        out.batches_window += bs.closed_window;
    }
    out.completed_qps = static_cast<double>(completed_in_window) /
        toSeconds(duration_);
    if (!hist_total_.empty()) {
        out.p50_ms = hist_total_.percentile(50);
        out.p99_ms = hist_total_.percentile(99);
    }
    out.slo_attainment = out.arrivals == 0
        ? 0.0
        : static_cast<double>(out.completed_in_slo) /
            static_cast<double>(out.arrivals);
    out.shard_rows = shard_rows_;
    out.shard_skew = shardSkew(shard_rows_);
    const std::vector<FailoverRecord> &fo = controller_.failovers();
    out.failovers = static_cast<unsigned>(fo.size());
    double detect_sum = 0.0;
    double recover_sum = 0.0;
    std::uint64_t recovered = 0;
    for (const FailoverRecord &rec : fo) {
        detect_sum += toMillis(rec.detected - rec.died);
        if (rec.restored != 0) {
            const double rec_ms = toMillis(rec.restored - rec.died);
            recover_sum += rec_ms;
            out.max_recovery_ms = std::max(out.max_recovery_ms, rec_ms);
            ++recovered;
        }
    }
    if (!fo.empty())
        out.mean_detection_ms =
            detect_sum / static_cast<double>(fo.size());
    if (recovered != 0)
        out.mean_recovery_ms =
            recover_sum / static_cast<double>(recovered);

    if (tel_ != nullptr) {
        // Telemetry flushes strictly after the parallel phase ends:
        // the registry is shared across the process and must only be
        // touched from the caller thread.
        if (reg_total_ != nullptr)
            reg_total_->merge(hist_total_);
        auto &m = tel_->metrics;
        m.counter("cluster.requests", {{"event", "arrived"}})
            .inc(out.arrivals);
        m.counter("cluster.requests", {{"event", "completed"}})
            .inc(out.completed);
        m.counter("cluster.requests", {{"event", "rerouted"}})
            .inc(rerouted_);
        m.counter("cluster.requests", {{"event", "dropped"}})
            .inc(dropped_);
        m.counter("cluster.ecc", {{"outcome", "benign"}})
            .inc(out.ecc_benign);
        m.counter("cluster.ecc", {{"outcome", "corrupted"}})
            .inc(out.ecc_corrupted);
        m.counter("cluster.ecc", {{"outcome", "retry"}})
            .inc(out.ecc_retries);
        m.counter("cluster.ecc", {{"outcome", "crash"}})
            .inc(out.ecc_crashes);
        m.counter("cluster.failovers").inc(out.failovers);
        m.counter("sim.events_executed").inc(des_.executed());
        m.counter("cluster.des_epochs").inc(des_.epochsRun());
        m.counter("cluster.des_messages").inc(des_.messagesDelivered());
        // The controller queue carries the cluster-wide control plane;
        // it stands in for the run in the queue-shape metrics.
        ctrlq().publishMetrics(m);
    }
    return out;
}

} // namespace

std::string
ClusterResult::summary() const
{
    char line[192];
    std::string out;
    const auto add = [&out, &line](int n) {
        MTIA_DCHECK_GT(n, 0) << ": summary formatting failed";
        out.append(line, static_cast<std::size_t>(n));
    };
    add(std::snprintf(line, sizeof line, "policy=%s\n", policy.c_str()));
    add(std::snprintf(line, sizeof line,
                      "offered_qps=%.6f completed_qps=%.6f\n",
                      offered_qps, completed_qps));
    add(std::snprintf(
        line, sizeof line,
        "arrivals=%" PRIu64 " completed=%" PRIu64
        " completed_in_slo=%" PRIu64 " rerouted=%" PRIu64
        " dropped=%" PRIu64 "\n",
        arrivals, completed, completed_in_slo, rerouted, dropped));
    add(std::snprintf(line, sizeof line,
                      "p50_ms=%.6f p99_ms=%.6f slo_attainment=%.6f\n",
                      p50_ms, p99_ms, slo_attainment));
    out += "shard_rows=[";
    for (std::size_t s = 0; s < shard_rows.size(); ++s) {
        add(std::snprintf(line, sizeof line, "%s%" PRId64,
                          s == 0 ? "" : ",", shard_rows[s]));
    }
    add(std::snprintf(line, sizeof line, "] shard_skew=%.6f\n",
                      shard_skew));
    add(std::snprintf(
        line, sizeof line,
        "batches=%" PRIu64 " full=%" PRIu64 " deadline=%" PRIu64
        " window=%" PRIu64 "\n",
        batches, batches_full, batches_deadline, batches_window));
    add(std::snprintf(line, sizeof line,
                      "kills=%u failovers=%u detection_ms=%.6f "
                      "recovery_ms=%.6f max_recovery_ms=%.6f\n",
                      kills, failovers, mean_detection_ms,
                      mean_recovery_ms, max_recovery_ms));
    add(std::snprintf(
        line, sizeof line,
        "ecc=%" PRIu64 " benign=%" PRIu64 " corrupted=%" PRIu64
        " retries=%" PRIu64 " crashes=%" PRIu64 "\n",
        ecc_errors, ecc_benign, ecc_corrupted, ecc_retries,
        ecc_crashes));
    return out;
}

ClusterSimulator::ClusterSimulator(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    MTIA_CHECK_GT(cfg_.replicas, 0u)
        << ": cluster needs at least one replica";
    MTIA_CHECK_GT(cfg_.chips_per_replica, 0u)
        << ": replicas need at least one chip";
    MTIA_CHECK_GT(cfg_.embedding_shards, 0u)
        << ": cluster needs at least one embedding shard";
    MTIA_CHECK_GT(cfg_.batcher.slo, 0u) << ": cluster needs an SLO";

    // The fabric latency is the parallel DES epoch width, and the
    // control-plane protocol leans on it being small against the
    // health timers: a heartbeat must cross the fabric within one
    // interval (else freshly-booted replicas look silent), and a
    // drain round trip must finish before the restart command lands.
    const Tick net = cfg_.fabric.latency();
    MTIA_CHECK_GE(net, 1u) << ": fabric latency must be at least one tick";
    MTIA_CHECK_LT(net, cfg_.health.heartbeat_interval)
        << ": fabric latency must undercut the heartbeat interval";
    MTIA_CHECK_GT(cfg_.health.restart_delay, 2 * net)
        << ": restart delay must cover a drain round trip";
}

ClusterResult
ClusterSimulator::simulate(double qps, Tick duration,
                           std::uint64_t seed) const
{
    return simulateImpl(qps, duration, seed, telemetry_);
}

ClusterResult
ClusterSimulator::simulateImpl(double qps, Tick duration,
                               std::uint64_t seed,
                               telemetry::Telemetry *tel) const
{
    MTIA_CHECK_GT(qps, 0.0) << ": cluster offered load";
    MTIA_CHECK_GT(duration, 0u) << ": cluster sim duration";
    RunState state(cfg_, qps, duration, seed, tel);
    return state.run();
}

std::vector<ClusterResult>
ClusterSimulator::sweep(const std::vector<double> &qps, Tick duration,
                        std::uint64_t seed) const
{
    const Rng base(seed);
    // One fork substream per load point; telemetry-detached because
    // the registry is shared mutable state across lanes. Each point's
    // own partition phase then runs inline (nested region), so the
    // bytes match a serial sweep exactly.
    return parallelMap(qps.size(), [&](std::size_t i) {
        return simulateImpl(qps[i], duration, base.fork(i).next(),
                            nullptr);
    });
}

} // namespace mtia
