#include "baselines/gpu_model.h"

#include <algorithm>

#include "graph/liveness.h"
#include "ops/dense_ops.h"
#include "ops/sparse_ops.h"
#include "sim/logging.h"

namespace mtia {

Tick
GpuModel::opTime(const Graph &g, int id) const
{
    const Node &nd = g.node(id);
    const Op &op = *nd.op;
    const std::string kind = op.kind();
    if (kind == "input")
        return 0;

    // Compute term.
    const Tick compute = fromSeconds(op.flops() / cfg_.fp16_flops);

    // Memory term: inputs + output + weights all cross HBM.
    Bytes traffic = op.weightBytes();
    for (int in : nd.inputs)
        traffic += static_cast<Bytes>(g.shapeOf(in).numel()) * 2;
    traffic += static_cast<Bytes>(g.shapeOf(id).numel()) * 2;
    if (kind == "tbe" || kind == "sequence-tbe") {
        // Embedding fetches touch only the gathered rows, not the
        // whole table; approximate with the op's pooled traffic.
        const auto *tbe = dynamic_cast<const TbeOp *>(nd.op.get());
        if (tbe != nullptr) {
            const Bytes row_bytes =
                static_cast<Bytes>(tbe->spec().dim) *
                dtypeSize(tbe->spec().dtype);
            traffic = row_bytes *
                static_cast<Bytes>(tbe->batch() * tbe->pooling() *
                                   tbe->spec().tables);
        }
    }
    BytesPerSec bw = cfg_.hbm_bandwidth;
    if (kind == "tbe" || kind == "sequence-tbe")
        bw *= cfg_.gather_efficiency;
    const Tick memory = transferTicks(traffic, bw);

    return cfg_.kernel_launch + std::max(compute, memory);
}

ModelCost
GpuModel::evaluate(const Graph &g, double batch) const
{
    g.validate();
    ModelCost cost;
    cost.batch = batch;
    cost.weight_bytes = g.totalWeightBytes();
    cost.order = g.topoOrder();

    Tick total = 0;
    for (int id : cost.order) {
        const Tick t = opTime(g, id);
        total += t;
        cost.time_by_kind[g.node(id).op->kind()] += t;
    }
    cost.latency = total;
    cost.qps = total == 0 ? 0.0 : batch / toSeconds(total);
    cost.avg_utilization = total == 0
        ? 0.0
        : g.totalFlops() / (toSeconds(total) * cfg_.fp16_flops);
    cost.activations_fit_lls = true; // no SRAM cliff on the GPU
    return cost;
}

double
GpuModel::powerWatts(double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    return std::min(cfg_.tdp_watts,
                    cfg_.idle_watts +
                        (cfg_.tdp_watts - cfg_.idle_watts) * util);
}

} // namespace mtia
