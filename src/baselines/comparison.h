#ifndef MTIA_BASELINES_COMPARISON_H_
#define MTIA_BASELINES_COMPARISON_H_

/**
 * @file
 * Side-by-side evaluation of one model on MTIA 2i and the GPU
 * baseline, producing the Perf/Watt and Perf/TCO ratios Figures 4
 * and 6 report. Host-side overhead (feature preprocessing, merge
 * orchestration) inflates both platforms' request latency by the
 * model's host fraction; sharded models divide throughput across
 * their shard count.
 */

#include <string>

#include "baselines/gpu_model.h"
#include "chip/device.h"
#include "chip/tco_model.h"
#include "models/model_zoo.h"

namespace mtia {

/** One platform's scorecard on one model. */
struct PlatformScore
{
    double qps = 0;           ///< samples/sec per accelerator
    double latency_ms = 0;
    double watts = 0;
    double perf_per_watt = 0;
    double perf_per_tco = 0;
    double utilization = 0;
};

/** The comparison for one model. */
struct ModelComparison
{
    std::string model;
    double mflops_per_sample = 0;
    PlatformScore mtia;
    PlatformScore gpu;

    double
    perfPerWattRatio() const
    {
        return gpu.perf_per_watt == 0.0
            ? 0.0
            : mtia.perf_per_watt / gpu.perf_per_watt;
    }
    double
    perfPerTcoRatio() const
    {
        return gpu.perf_per_tco == 0.0
            ? 0.0
            : mtia.perf_per_tco / gpu.perf_per_tco;
    }
    /** TCO saved serving this model on MTIA at matched throughput. */
    double
    tcoReduction() const
    {
        return perfPerTcoRatio() == 0.0
            ? 0.0
            : 1.0 - 1.0 / perfPerTcoRatio();
    }
};

/** Cross-platform comparison harness. */
class ComparisonHarness
{
  public:
    ComparisonHarness(Device &mtia, GpuModel gpu = GpuModel(),
                      TcoModel tco = TcoModel())
        : mtia_(mtia), gpu_(std::move(gpu)), tco_(tco) {}

    /**
     * Evaluate @p model on both platforms. The graph is evaluated
     * as-is (optimize it first); @p opt controls the MTIA side.
     */
    ModelComparison compare(const ModelInfo &model,
                            const GraphCostOptions &opt = {});

  private:
    Device &mtia_;
    GpuModel gpu_;
    TcoModel tco_;
};

} // namespace mtia

#endif // MTIA_BASELINES_COMPARISON_H_
