#include "baselines/comparison.h"

#include <algorithm>
#include <cmath>

#include "autotune/sharding.h"

namespace mtia {

ModelComparison
ComparisonHarness::compare(const ModelInfo &model,
                           const GraphCostOptions &opt)
{
    ModelComparison out;
    out.model = model.name;
    out.mflops_per_sample = model.mflopsPerSample();

    // Host-side work hurts the 24-accelerator MTIA server three times
    // as much as the 8-GPU server: each MTIA chip gets only a third
    // of the per-accelerator host cores/DRAM bandwidth (Section 3.4).
    const double mtia_host = 1.0 + model.host_overhead_fraction * 3.0;
    const double gpu_host = 1.0 + model.host_overhead_fraction;

    // Shards: embeddings + runtime buffers against device DRAM.
    ShardingPlanner mtia_planner(mtia_.config());
    const unsigned mtia_shards = std::max(
        1u, mtia_planner.shardsNeeded(model.embedding_bytes, 8_GiB));
    const double gpu_usable = static_cast<double>(
        gpu_.config().hbm_capacity - 8_GiB);
    const unsigned gpu_shards = std::max(
        1u,
        static_cast<unsigned>(std::ceil(
            static_cast<double>(model.embedding_bytes) / gpu_usable)));

    // --- MTIA side.
    GraphCostModel gcm(mtia_);
    const ModelCost mcost =
        gcm.evaluate(model.graph, static_cast<double>(model.batch), opt);
    out.mtia.latency_ms = mcost.latencyMs() * mtia_host;
    out.mtia.qps = mcost.qps / mtia_host / mtia_shards;
    out.mtia.utilization = std::min(1.0, mcost.avg_utilization * 3.0);
    // Serving-average power varies far less across models than
    // utilization does (power capping, background refresh, host DMA):
    // score with the platform's measured serving average, as the
    // paper's Perf/Watt accounting does.
    const PlatformCost mtia_platform = PlatformCost::mtia2iServer();
    out.mtia.watts = mtia_platform.typical_watts;
    out.mtia.perf_per_watt = tco_.perfPerWatt(out.mtia.qps,
                                              out.mtia.watts);
    out.mtia.perf_per_tco =
        tco_.perfPerTco(out.mtia.qps, mtia_platform, out.mtia.watts);

    // --- GPU side.
    const ModelCost gcost =
        gpu_.evaluate(model.graph, static_cast<double>(model.batch));
    out.gpu.latency_ms = gcost.latencyMs() * gpu_host;
    out.gpu.qps = gcost.qps / gpu_host / gpu_shards;
    out.gpu.utilization = std::min(1.0, gcost.avg_utilization * 3.0);
    const PlatformCost gpu_platform = PlatformCost::gpuServer();
    out.gpu.watts = gpu_platform.typical_watts;
    out.gpu.perf_per_watt =
        tco_.perfPerWatt(out.gpu.qps, out.gpu.watts);
    out.gpu.perf_per_tco =
        tco_.perfPerTco(out.gpu.qps, gpu_platform, out.gpu.watts);
    return out;
}

} // namespace mtia
