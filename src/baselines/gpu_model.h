#ifndef MTIA_BASELINES_GPU_MODEL_H_
#define MTIA_BASELINES_GPU_MODEL_H_

/**
 * @file
 * Roofline model of the GPU baseline (an H100-class inference part on
 * the same Grand Teton platform, eight per server). Per-op time is
 * max(compute at sustained FLOPS, HBM traffic) plus a per-kernel
 * launch overhead — the launch term is what makes small-kernel DLRM
 * graphs comparatively expensive on the big device, and the flat HBM
 * bandwidth is what removes MTIA's SRAM-locality advantage and
 * disadvantage alike.
 */

#include <cstdint>

#include "graph/graph.h"
#include "graph/graph_cost.h"
#include "sim/types.h"

namespace mtia {

/** GPU device parameters. */
struct GpuConfig
{
    std::string name = "gpu-h100-class";
    /** Sustained dense FP16 tensor-core FLOPS (not marketing peak). */
    double fp16_flops = 420e12;
    double int8_flops = 900e12;
    BytesPerSec hbm_bandwidth = gbPerSec(3350.0);
    /** Fraction of HBM bandwidth scattered embedding gathers reach
     * (short rows, random rows: far below the streaming peak). */
    double gather_efficiency = 0.25;
    Bytes hbm_capacity = 80_GiB;
    /** CUDA kernel launch + scheduling overhead. */
    Tick kernel_launch = fromMicros(2.5);
    double tdp_watts = 700.0;
    double typical_watts = 210.0; ///< recommendation-serving average
    double idle_watts = 80.0;
};

/** Graph cost evaluation on the GPU baseline. */
class GpuModel
{
  public:
    explicit GpuModel(GpuConfig cfg = {}) : cfg_(cfg) {}

    const GpuConfig &config() const { return cfg_; }

    /**
     * Evaluate a model graph at @p batch. The GPU software stack is
     * mature: the graph should already be optimized (fused) before
     * calling; remaining per-op launches are charged.
     */
    ModelCost evaluate(const Graph &g, double batch) const;

    /** Power at a given utilization. */
    double powerWatts(double utilization) const;

  private:
    Tick opTime(const Graph &g, int id) const;

    GpuConfig cfg_;
};

} // namespace mtia

#endif // MTIA_BASELINES_GPU_MODEL_H_
