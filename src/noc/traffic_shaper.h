#ifndef MTIA_NOC_TRAFFIC_SHAPER_H_
#define MTIA_NOC_TRAFFIC_SHAPER_H_

/**
 * @file
 * Source-side flow control for the NoC: leaky-bucket traffic shaping
 * and packet fragmentation, which smooth bursts and prevent congestion
 * (Section 3.1). Shapers are enforced at each initiator.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace mtia {

/**
 * Token-bucket (leaky-bucket) shaper: tokens accrue at @p rate bytes
 * per second up to @p burst bytes; a transfer departs when enough
 * tokens are available.
 */
class TrafficShaper
{
  public:
    /**
     * @param rate Sustained rate in bytes/sec.
     * @param burst Bucket depth in bytes (max burst size).
     */
    TrafficShaper(BytesPerSec rate, Bytes burst);

    /**
     * Request to send @p bytes at time @p now.
     * @return the earliest time the transfer may start; tokens are
     * debited as of that time.
     */
    Tick offer(Tick now, Bytes bytes);

    /**
     * Event-driven send: debit tokens as of eq.now() and schedule
     * @p on_depart on @p eq at the transfer's departure time. The
     * callable is enqueued directly (no wrapper), so move-only,
     * inline-sized closures take the queue's no-allocation fast path.
     * Returns the departure tick (== the callback's fire time).
     */
    template <typename Fn>
    Tick
    send(EventQueue &eq, Bytes bytes, Fn &&on_depart)
    {
        const Tick depart = offer(eq.now(), bytes);
        eq.schedule(depart, std::forward<Fn>(on_depart));
        return depart;
    }

    /** Tokens available at time @p now without sending. */
    double tokensAt(Tick now) const;

    BytesPerSec rate() const { return rate_; }
    Bytes burst() const { return burst_; }

  private:
    BytesPerSec rate_;
    Bytes burst_;
    double tokens_;
    Tick last_ = 0;
};

/**
 * Fragment a message into NoC packets with a fixed maximum payload,
 * as the hardware does to interleave initiators fairly.
 */
struct PacketFragmenter
{
    Bytes max_payload = 256;
    Bytes header_bytes = 16;

    /** Number of packets for a message of @p bytes. */
    std::uint64_t packetCount(Bytes bytes) const;

    /** Total wire bytes including per-packet headers. */
    Bytes wireBytes(Bytes bytes) const;

    /** Per-packet payload sizes for a message of @p bytes. */
    std::vector<Bytes> fragment(Bytes bytes) const;
};

} // namespace mtia

#endif // MTIA_NOC_TRAFFIC_SHAPER_H_
