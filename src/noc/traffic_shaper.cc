#include "noc/traffic_shaper.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mtia {

TrafficShaper::TrafficShaper(BytesPerSec rate, Bytes burst)
    : rate_(rate), burst_(burst), tokens_(static_cast<double>(burst))
{
    MTIA_CHECK_GT(rate_, 0.0) << ": TrafficShaper rate";
    MTIA_CHECK_GT(burst_, 0u) << ": TrafficShaper burst";
}

double
TrafficShaper::tokensAt(Tick now) const
{
    const double elapsed = toSeconds(now - std::min(now, last_));
    return std::min(static_cast<double>(burst_),
                    tokens_ + rate_ * elapsed);
}

Tick
TrafficShaper::offer(Tick now, Bytes bytes)
{
    if (now < last_)
        now = last_; // requests are processed in order
    double avail = tokensAt(now);
    Tick start = now;
    const double need = static_cast<double>(bytes);
    if (avail < need) {
        const double deficit = need - avail;
        start = now + fromSeconds(deficit / rate_);
        avail = need;
    }
    last_ = start;
    tokens_ = avail - need;
    return start;
}

std::uint64_t
PacketFragmenter::packetCount(Bytes bytes) const
{
    MTIA_DCHECK_GT(max_payload, 0u) << ": PacketFragmenter payload size";
    if (bytes == 0)
        return 0;
    return (bytes + max_payload - 1) / max_payload;
}

Bytes
PacketFragmenter::wireBytes(Bytes bytes) const
{
    return bytes + packetCount(bytes) * header_bytes;
}

std::vector<Bytes>
PacketFragmenter::fragment(Bytes bytes) const
{
    std::vector<Bytes> out;
    out.reserve(packetCount(bytes));
    while (bytes > 0) {
        const Bytes p = std::min(bytes, max_payload);
        out.push_back(p);
        bytes -= p;
    }
    return out;
}

} // namespace mtia
