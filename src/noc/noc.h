#ifndef MTIA_NOC_NOC_H_
#define MTIA_NOC_NOC_H_

/**
 * @file
 * Network-on-chip bandwidth and contention model. The real NoC is a
 * non-blocking crossbar fabric; what matters to kernel performance is
 * (a) aggregate bandwidth between PEs and the SRAM/memory-controller
 * edge, (b) redundant-read amplification when many PEs fetch the same
 * weight tile (eliminated by hardware broadcast reads, Section 4.2),
 * and (c) serialization overhead from packetization.
 */

#include <cstdint>
#include <string>

#include "noc/traffic_shaper.h"
#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/** Static NoC configuration. */
struct NocConfig
{
    /** Aggregate PE<->SRAM/MC bandwidth. MTIA 2i delivers 3.3x the
     * MTIA 1 fabric. */
    BytesPerSec bisection_bandwidth = gbPerSec(2700.0);
    /** Per-hop/packet overhead folded into wire bytes. */
    PacketFragmenter fragmenter{};
    /** Hardware support for one-to-many broadcast reads. */
    bool broadcast_reads = true;
    /** Fixed transfer startup latency. */
    Tick start_latency = fromNanos(50.0);
};

/** Aggregate traffic counters. */
struct NocStats
{
    std::uint64_t transfers = 0;
    Bytes payload_bytes = 0;
    Bytes wire_bytes = 0;
    Bytes redundant_bytes = 0; ///< amplification from non-broadcast reads
};

/** Bandwidth/contention model of the chip fabric. */
class NocModel
{
  public:
    /** @pre cfg.bisection_bandwidth > 0 */
    explicit NocModel(NocConfig cfg);

    const NocConfig &config() const { return cfg_; }
    NocStats &stats() { return stats_; }

    /** Time to move @p bytes point-to-point across the fabric. */
    Tick transferTime(Bytes bytes);

    /**
     * Time for @p readers PEs to each obtain the same @p bytes (e.g. a
     * weight tile). With broadcast reads the fabric carries the data
     * once; without, each reader issues its own copy, multiplying the
     * wire traffic and, when the source is the DRAM edge, wasting
     * DRAM bandwidth as well.
     */
    Tick broadcastReadTime(Bytes bytes, unsigned readers);

    /**
     * Effective fraction of DRAM bandwidth a streaming kernel can use
     * through the fabric given @p readers independent initiators
     * contending for the memory-controller edge. Matches Section 4.2:
     * uncoordinated per-column weight reads reach ~half of the DRAM
     * peak, while broadcast+decoupled loading exceeds 95%.
     */
    double dramEdgeEfficiency(unsigned readers, bool coordinated) const;

    void setBroadcastReads(bool enabled) { cfg_.broadcast_reads = enabled; }

    /**
     * Snapshot the cumulative traffic totals into @p registry as
     * noc.* gauges labeled {device=@p device}. Gauges overwrite, so
     * repeated exports never double-count.
     */
    void exportMetrics(telemetry::MetricRegistry &registry,
                       const std::string &device) const;

  private:
    NocConfig cfg_;
    NocStats stats_;
};

} // namespace mtia

#endif // MTIA_NOC_NOC_H_
