#ifndef MTIA_NOC_DEADLOCK_H_
#define MTIA_NOC_DEADLOCK_H_

/**
 * @file
 * Wait-for-graph deadlock detection. Section 5.5's production incident
 * was a cyclic dependency spanning the Control Core, the NoC
 * serialization point, and PCIe transaction ordering; this module
 * provides the graph abstraction that both reproduces the incident
 * and verifies its firmware mitigation.
 */

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtia {

/**
 * Directed wait-for graph between named agents; an edge a -> b means
 * "a is blocked waiting for b to make progress".
 */
class WaitForGraph
{
  public:
    /** Add a node (idempotent). */
    void addAgent(const std::string &name);

    /** Record that @p waiter is blocked on @p holder. */
    void addWait(const std::string &waiter, const std::string &holder);

    /** Remove a wait edge if present. */
    void removeWait(const std::string &waiter, const std::string &holder);

    /** True if any cycle (deadlock) exists. */
    bool hasDeadlock() const;

    /**
     * One deadlock cycle as an ordered list of agent names (empty if
     * none). The cycle starts at its lexicographically smallest node
     * for deterministic reporting.
     */
    std::vector<std::string> findCycle() const;

    std::size_t agentCount() const { return adj_.size(); }
    std::size_t edgeCount() const;

  private:
    std::map<std::string, std::set<std::string>> adj_;
};

} // namespace mtia

#endif // MTIA_NOC_DEADLOCK_H_
