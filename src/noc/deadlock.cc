#include "noc/deadlock.h"

#include <algorithm>

namespace mtia {

void
WaitForGraph::addAgent(const std::string &name)
{
    adj_[name];
}

void
WaitForGraph::addWait(const std::string &waiter, const std::string &holder)
{
    adj_[waiter].insert(holder);
    adj_[holder]; // ensure the holder node exists
}

void
WaitForGraph::removeWait(const std::string &waiter,
                         const std::string &holder)
{
    auto it = adj_.find(waiter);
    if (it != adj_.end())
        it->second.erase(holder);
}

std::size_t
WaitForGraph::edgeCount() const
{
    std::size_t n = 0;
    for (const auto &[node, outs] : adj_)
        n += outs.size();
    return n;
}

bool
WaitForGraph::hasDeadlock() const
{
    return !findCycle().empty();
}

std::vector<std::string>
WaitForGraph::findCycle() const
{
    // Iterative DFS with colors; returns the first cycle found when
    // scanning roots in sorted order (std::map iteration order).
    enum Color { White, Gray, Black };
    std::map<std::string, Color> color;
    std::map<std::string, std::string> parent;
    for (const auto &[node, outs] : adj_)
        color[node] = White;

    for (const auto &[root, outs0] : adj_) {
        if (color[root] != White)
            continue;
        std::vector<std::pair<std::string, bool>> stack;
        stack.emplace_back(root, false);
        while (!stack.empty()) {
            auto [node, processed] = stack.back();
            stack.pop_back();
            if (processed) {
                color[node] = Black;
                continue;
            }
            if (color[node] == Black)
                continue;
            color[node] = Gray;
            stack.emplace_back(node, true);
            auto it = adj_.find(node);
            if (it == adj_.end())
                continue;
            for (const auto &next : it->second) {
                if (color[next] == Gray) {
                    // Found a back edge: reconstruct the cycle.
                    std::vector<std::string> cycle{next};
                    std::string cur = node;
                    while (cur != next) {
                        cycle.push_back(cur);
                        cur = parent[cur];
                    }
                    std::reverse(cycle.begin() + 1, cycle.end());
                    // Rotate so the smallest name leads.
                    auto smallest =
                        std::min_element(cycle.begin(), cycle.end());
                    std::rotate(cycle.begin(), smallest, cycle.end());
                    return cycle;
                }
                if (color[next] == White) {
                    parent[next] = node;
                    stack.emplace_back(next, false);
                }
            }
        }
    }
    return {};
}

} // namespace mtia
