#include "noc/noc.h"

#include "core/check.h"
#include "telemetry/metrics.h"

namespace mtia {

NocModel::NocModel(NocConfig cfg) : cfg_(cfg)
{
    MTIA_CHECK_GT(cfg_.bisection_bandwidth, 0.0)
        << ": NocModel needs positive fabric bandwidth";
}

Tick
NocModel::transferTime(Bytes bytes)
{
    const Bytes wire = cfg_.fragmenter.wireBytes(bytes);
    // Packetization only ever adds header bytes on the wire.
    MTIA_DCHECK_GE(wire, bytes) << ": fragmenter shrank a transfer";
    ++stats_.transfers;
    stats_.payload_bytes += bytes;
    stats_.wire_bytes += wire;
    return cfg_.start_latency +
        transferTicks(wire, cfg_.bisection_bandwidth);
}

Tick
NocModel::broadcastReadTime(Bytes bytes, unsigned readers)
{
    if (readers == 0)
        return 0;
    if (cfg_.broadcast_reads) {
        // One fabric traversal serves every reader.
        return transferTime(bytes);
    }
    // Each reader fetches its own copy; the copies serialize on the
    // shared source port.
    const Bytes wire = cfg_.fragmenter.wireBytes(bytes);
    stats_.transfers += readers;
    stats_.payload_bytes += bytes * readers;
    stats_.wire_bytes += wire * readers;
    stats_.redundant_bytes += wire * (readers - 1);
    return cfg_.start_latency +
        transferTicks(wire * readers, cfg_.bisection_bandwidth);
}

double
NocModel::dramEdgeEfficiency(unsigned readers, bool coordinated) const
{
    if (coordinated && cfg_.broadcast_reads) {
        // Decoupled activation/weight loading with broadcast reads
        // presents one long sequential stream to the memory
        // controller; only refresh and turnaround overheads remain.
        return 0.97;
    }
    // Uncoordinated initiators interleave short reads at the memory
    // controller; row-buffer and arbitration losses grow with the
    // number of contending streams.
    const double r = static_cast<double>(readers);
    return 1.0 / (1.0 + 0.12 * r);
}

void
NocModel::exportMetrics(telemetry::MetricRegistry &registry,
                        const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("noc.transfers", labels)
        .set(static_cast<double>(stats_.transfers));
    registry.gauge("noc.payload_bytes", labels)
        .set(static_cast<double>(stats_.payload_bytes));
    registry.gauge("noc.wire_bytes", labels)
        .set(static_cast<double>(stats_.wire_bytes));
    registry.gauge("noc.redundant_bytes", labels)
        .set(static_cast<double>(stats_.redundant_bytes));
}

} // namespace mtia
