#ifndef MTIA_CORE_SIMD_GEMM_H_
#define MTIA_CORE_SIMD_GEMM_H_

/**
 * Blocked, cache-tiled, multithreaded GEMM over raw row-major buffers
 * with runtime-dispatched register-blocked micro-kernels per ISA tier
 * (core/simd.h SimdIsa). The layering keeps Tensor out of core: the
 * Tensor-facing wrappers (dtype round-trip, fused activation epilogue)
 * live in src/ops/gemm_kernels.h.
 *
 * Determinism contract — every tier, at any MTIA_THREADS, produces
 * bytes identical to the scalar reference (the sequential
 * `acc += a[i,p] * b[p,j]` chain of pe/dpe.cc):
 *
 *  - Vectorization runs only across j (output columns), so each
 *    output element keeps its own strictly sequential fp32
 *    k-accumulation chain. No FMA anywhere (mul then add; the build
 *    forces -ffp-contract=off).
 *  - C is zeroed, then kc-deep packed panels are accumulated in
 *    ascending panel order; micro-kernels load/accumulate/store their
 *    C tile per panel, preserving the global k order.
 *  - Packing (BLIS-style) is pure elementwise data movement: B is
 *    packed once per call into nr-wide column strips per panel; A is
 *    packed per row block into mr-tall row strips.
 *  - Threads partition disjoint mc-row blocks via core/parallel.h
 *    parallelFor (static sharding), so the work-to-writes mapping is
 *    independent of the lane count.
 *
 * The int8 path accumulates in int32 lanes; integer addition is
 * associative so blocking is free. |a*b| <= 16384 bounds any partial
 * sum by k*16384, hence exactness (and no signed overflow) holds for
 * k <= 131071 — enforced by the driver, far above model shapes.
 */

#include <cstdint>

#include "core/simd.h"

namespace mtia::simd
{

/** Cache-blocking config: mc rows/parallel block, kc-deep panels, nc
 *  columns per L2/L3 block. */
struct GemmBlocking
{
    std::int64_t mc = 64;
    std::int64_t kc = 256;
    std::int64_t nc = 512;
};

/**
 * One ISA tier's register-blocked micro-kernels. `f32` accumulates an
 * mh×nw tile of C (mh<=mr, nw<=nr) over a kc-deep packed A strip
 * (layout a[p*mh + i]) and B strip (layout b[p*nw + j]); `i8` is the
 * int32-accumulating int8 counterpart with its own mr8×nr8 geometry.
 * Partial tiles fall back to scalar element loops inside the kernel.
 */
struct GemmMicroKernel
{
    SimdIsa isa = SimdIsa::Scalar;
    int mr = 4;
    int nr = 4;
    void (*f32)(const float *a_strip, const float *b_strip, float *c,
                std::int64_t ldc, std::int64_t kc, int mh, int nw);
    int mr8 = 4;
    int nr8 = 4;
    void (*i8)(const std::int8_t *a_strip, const std::int8_t *b_strip,
               std::int32_t *c, std::int64_t ldc, std::int64_t kc, int mh,
               int nw);
};

/** Micro-kernel table entry for `isa` (must satisfy isaSupported). */
const GemmMicroKernel &microKernel(SimdIsa isa);

/**
 * C[m×n] = A[m×k] · B[k×n], row-major fp32, bit-identical to the
 * sequential scalar reference on every tier. `epilogue`, when
 * non-null, runs inside the parallel region once per finished row
 * block (args: row begin/end) — the fusion hook for activation /
 * dequant passes while the block is still cache-hot.
 */
void gemmF32(const float *a, const float *b, float *c, std::int64_t m,
             std::int64_t n, std::int64_t k, SimdIsa isa,
             const GemmBlocking &blk,
             void (*epilogue)(void *, std::int64_t, std::int64_t) = nullptr,
             void *epilogue_arg = nullptr);

/** Int8 GEMM with exact int32 accumulation (k <= 131071 enforced). */
void gemmI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
            std::int64_t m, std::int64_t n, std::int64_t k, SimdIsa isa,
            const GemmBlocking &blk,
            void (*epilogue)(void *, std::int64_t, std::int64_t) = nullptr,
            void *epilogue_arg = nullptr);

namespace detail
{
// Per-tier kernel tables, defined in their own TUs (the AVX TUs exist
// only when CMake's compiler checks pass; microKernel() references
// them behind MTIA_GEMM_HAVE_* / MTIA_SIMD_* guards).
const GemmMicroKernel &scalarGemmKernel();
const GemmMicroKernel &vec128GemmKernel(); // SSE2 or NEON via VecF32
const GemmMicroKernel &avx2GemmKernel();
const GemmMicroKernel &avx512GemmKernel();
} // namespace detail

} // namespace mtia::simd

#endif // MTIA_CORE_SIMD_GEMM_H_
