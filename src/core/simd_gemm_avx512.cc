/**
 * AVX-512F GEMM micro-kernels: 4x32 fp32 tile (two __m512 per row),
 * 4x16 int8 tile over __m512i int32 lanes. -mavx512f implies -mfma,
 * so the build's global -ffp-contract=off is what keeps the fp chains
 * mul-then-add and byte-identical to the scalar reference; the
 * kernels themselves only ever emit separate mul/add intrinsics.
 * CMake adds this TU only when the compiler accepts -mavx512f; raw
 * intrinsics are sanctioned by the raw-intrinsics rule's
 * src/core/simd* carve-out.
 */

#include "core/simd_gemm.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace mtia::simd
{
namespace
{

constexpr int kMr = 4;
constexpr int kNr = 32;
constexpr int kNr8 = 16;

void
avx512TileF32(const float *a, const float *b, float *c, std::int64_t ldc,
              std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr) {
        detail::scalarGemmKernel().f32(a, b, c, ldc, kc, mh, nw);
        return;
    }
    __m512 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm512_loadu_ps(c + i * ldc);
        acc[i][1] = _mm512_loadu_ps(c + i * ldc + 16);
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *bp = b + p * kNr;
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const __m512 av = _mm512_set1_ps(ap[i]);
            acc[i][0] = _mm512_add_ps(acc[i][0], _mm512_mul_ps(av, b0));
            acc[i][1] = _mm512_add_ps(acc[i][1], _mm512_mul_ps(av, b1));
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm512_storeu_ps(c + i * ldc, acc[i][0]);
        _mm512_storeu_ps(c + i * ldc + 16, acc[i][1]);
    }
}

void
avx512TileI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
             std::int64_t ldc, std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr8) {
        detail::scalarGemmKernel().i8(a, b, c, ldc, kc, mh, nw);
        return;
    }
    __m512i acc[kMr];
    for (int i = 0; i < kMr; ++i)
        acc[i] = _mm512_loadu_si512(
            reinterpret_cast<const void *>(c + i * ldc));
    for (std::int64_t p = 0; p < kc; ++p) {
        const __m512i bv = _mm512_cvtepi8_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + p * kNr8)));
        const std::int8_t *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const __m512i av =
                _mm512_set1_epi32(static_cast<std::int32_t>(ap[i]));
            acc[i] = _mm512_add_epi32(acc[i],
                                      _mm512_mullo_epi32(av, bv));
        }
    }
    for (int i = 0; i < kMr; ++i)
        _mm512_storeu_si512(reinterpret_cast<void *>(c + i * ldc),
                            acc[i]);
}

const GemmMicroKernel kAvx512Kernel = {SimdIsa::Avx512, kMr,  kNr,
                                       &avx512TileF32,  kMr,  kNr8,
                                       &avx512TileI8};

} // namespace

namespace detail
{

const GemmMicroKernel &
avx512GemmKernel()
{
    return kAvx512Kernel;
}

} // namespace detail

} // namespace mtia::simd

#endif // __AVX512F__
