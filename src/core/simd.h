#ifndef MTIA_CORE_SIMD_H_
#define MTIA_CORE_SIMD_H_

/**
 * @file
 * Portable 128-bit SIMD abstraction for the vectorized numerics
 * kernel layer: four-lane float / int32 vectors over SSE2 or NEON
 * intrinsics with a scalar fallback, selected at compile time, plus
 * aligned-buffer and software-prefetch helpers.
 *
 * The backend is chosen once per build:
 *
 *  - SSE2 on x86-64 (baseline ISA, no -m flags needed),
 *  - NEON on AArch64,
 *  - the scalar fallback everywhere else, or anywhere when the CMake
 *    option MTIA_NO_SIMD is ON (useful to isolate a suspected
 *    vectorization bug or to benchmark the scalar reference paths).
 *
 * Contract: every kernel written on top of this layer must produce
 * bit-identical results on all three backends. The integer ops are
 * exact by construction; the float ops (+, -, *) are IEEE-754
 * single-precision with round-to-nearest-even on every backend, so
 * lane-for-lane they match the equivalent scalar expression. Lane
 * reductions (e.g. a running max) reorder only min/max, which are
 * exact for non-NaN inputs. Kernels must not rely on NaN propagation
 * through vmin/vmax — SSE2 and NEON disagree there.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <cmath>
#include <new>
#include <utility>

#if !defined(MTIA_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || \
     (defined(_M_IX86_FP) && _M_IX86_FP >= 2))
#define MTIA_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(MTIA_NO_SIMD) && defined(__ARM_NEON) && defined(__aarch64__)
#define MTIA_SIMD_NEON 1
#include <arm_neon.h>
#else
#define MTIA_SIMD_SCALAR 1
#endif

namespace mtia::simd {

/** Lanes per vector on every backend. */
inline constexpr std::size_t kLanes = 4;

/** Alignment of AlignedBuffer storage (one cache line). */
inline constexpr std::size_t kAlignment = 64;

/** Name of the compiled-in backend ("sse2", "neon", "scalar"). */
inline const char *
backendName()
{
#if defined(MTIA_SIMD_SSE2)
    return "sse2";
#elif defined(MTIA_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** Hint the cache that @p p will be read soon (no-op where unsupported). */
inline void
prefetch(const void *p)
{
#if defined(MTIA_SIMD_SSE2)
    _mm_prefetch(static_cast<const char *>(p), _MM_HINT_T0);
#elif defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

struct VecF32;

/** Four-lane 32-bit integer vector (also the mask type: a comparison
 * yields all-ones / all-zeros lanes). */
struct VecI32
{
#if defined(MTIA_SIMD_SSE2)
    __m128i v;
#elif defined(MTIA_SIMD_NEON)
    int32x4_t v;
#else
    std::int32_t v[4];
#endif

    static VecI32
    broadcast(std::int32_t x)
    {
#if defined(MTIA_SIMD_SSE2)
        return {_mm_set1_epi32(x)};
#elif defined(MTIA_SIMD_NEON)
        return {vdupq_n_s32(x)};
#else
        return {{x, x, x, x}};
#endif
    }

    /** Broadcast a bit pattern given as unsigned (avoids UB-ish casts
     * at call sites full of 0x8000'0000-style constants). */
    static VecI32
    broadcastBits(std::uint32_t x)
    {
        return broadcast(static_cast<std::int32_t>(x));
    }

    static VecI32
    load(const std::int32_t *p)
    {
#if defined(MTIA_SIMD_SSE2)
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
#elif defined(MTIA_SIMD_NEON)
        return {vld1q_s32(p)};
#else
        VecI32 r;
        std::memcpy(r.v, p, sizeof(r.v));
        return r;
#endif
    }

    void
    store(std::int32_t *p) const
    {
#if defined(MTIA_SIMD_SSE2)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
#elif defined(MTIA_SIMD_NEON)
        vst1q_s32(p, v);
#else
        std::memcpy(p, v, sizeof(v));
#endif
    }
};

/** Four-lane single-precision float vector. */
struct VecF32
{
#if defined(MTIA_SIMD_SSE2)
    __m128 v;
#elif defined(MTIA_SIMD_NEON)
    float32x4_t v;
#else
    float v[4];
#endif

    static VecF32
    broadcast(float x)
    {
#if defined(MTIA_SIMD_SSE2)
        return {_mm_set1_ps(x)};
#elif defined(MTIA_SIMD_NEON)
        return {vdupq_n_f32(x)};
#else
        return {{x, x, x, x}};
#endif
    }

    static VecF32
    load(const float *p)
    {
#if defined(MTIA_SIMD_SSE2)
        return {_mm_loadu_ps(p)};
#elif defined(MTIA_SIMD_NEON)
        return {vld1q_f32(p)};
#else
        VecF32 r;
        std::memcpy(r.v, p, sizeof(r.v));
        return r;
#endif
    }

    void
    store(float *p) const
    {
#if defined(MTIA_SIMD_SSE2)
        _mm_storeu_ps(p, v);
#elif defined(MTIA_SIMD_NEON)
        vst1q_f32(p, v);
#else
        std::memcpy(p, v, sizeof(v));
#endif
    }
};

// ------------------------------------------------------- integer ops

inline VecI32
operator+(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_add_epi32(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vaddq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[i]) +
            static_cast<std::uint32_t>(b.v[i]));
    return r;
#endif
}

inline VecI32
operator-(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_sub_epi32(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vsubq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[i]) -
            static_cast<std::uint32_t>(b.v[i]));
    return r;
#endif
}

/** Lane-wise low-32-bit product (exact for int8×int8 accumulation). */
inline VecI32
mulLo(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    // SSE2 has no 32-bit lane multiply; _mm_mul_epu32 gives the full
    // 64-bit product of the even lanes, whose low words equal the
    // signed low-32 product. Do even and odd lanes, then re-interleave.
    const __m128i even = _mm_mul_epu32(a.v, b.v);
    const __m128i odd = _mm_mul_epu32(_mm_srli_si128(a.v, 4),
                                      _mm_srli_si128(b.v, 4));
    const __m128i even_lo =
        _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0));
    const __m128i odd_lo = _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0));
    return {_mm_unpacklo_epi32(even_lo, odd_lo)};
#elif defined(MTIA_SIMD_NEON)
    return {vmulq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[i]) *
            static_cast<std::uint32_t>(b.v[i]));
    return r;
#endif
}

inline VecI32
operator&(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_and_si128(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vandq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] & b.v[i];
    return r;
#endif
}

inline VecI32
operator|(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_or_si128(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vorrq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] | b.v[i];
    return r;
#endif
}

inline VecI32
operator^(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_xor_si128(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {veorq_s32(a.v, b.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] ^ b.v[i];
    return r;
#endif
}

/** b & ~a (operand order matches _mm_andnot). */
inline VecI32
andnot(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_andnot_si128(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vbicq_s32(b.v, a.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = b.v[i] & ~a.v[i];
    return r;
#endif
}

template <int N>
inline VecI32
shiftLeft(VecI32 a)
{
    static_assert(N >= 0 && N < 32);
#if defined(MTIA_SIMD_SSE2)
    return {_mm_slli_epi32(a.v, N)};
#elif defined(MTIA_SIMD_NEON)
    return {vshlq_n_s32(a.v, N)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[i]) << N);
    return r;
#endif
}

/** Logical (zero-filling) right shift. */
template <int N>
inline VecI32
shiftRightLogical(VecI32 a)
{
    static_assert(N >= 0 && N < 32);
#if defined(MTIA_SIMD_SSE2)
    return {_mm_srli_epi32(a.v, N)};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_s32_u32(
        vshrq_n_u32(vreinterpretq_u32_s32(a.v), N))};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a.v[i]) >> N);
    return r;
#endif
}

/** Signed (>) lane compare: all-ones lane where a > b. */
inline VecI32
cmpGt(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_cmpgt_epi32(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_s32_u32(vcgtq_s32(a.v, b.v))};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] > b.v[i] ? -1 : 0;
    return r;
#endif
}

inline VecI32
cmpEq(VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_cmpeq_epi32(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_s32_u32(vceqq_s32(a.v, b.v))};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
#endif
}

/** Per-lane select: mask lane all-ones -> a, zeros -> b. */
inline VecI32
select(VecI32 mask, VecI32 a, VecI32 b)
{
#if defined(MTIA_SIMD_NEON)
    return {vbslq_s32(vreinterpretq_u32_s32(mask.v), a.v, b.v)};
#else
    return (a & mask) | andnot(mask, b);
#endif
}

// --------------------------------------------------------- float ops

inline VecF32
operator+(VecF32 a, VecF32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_add_ps(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vaddq_f32(a.v, b.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
#endif
}

inline VecF32
operator-(VecF32 a, VecF32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_sub_ps(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vsubq_f32(a.v, b.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] - b.v[i];
    return r;
#endif
}

inline VecF32
operator*(VecF32 a, VecF32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_mul_ps(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vmulq_f32(a.v, b.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] * b.v[i];
    return r;
#endif
}

/** Per-lane min; exact for non-NaN inputs (NaN lanes unspecified). */
inline VecF32
vmin(VecF32 a, VecF32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_min_ps(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vminq_f32(a.v, b.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
#endif
}

/** Per-lane max; exact for non-NaN inputs (NaN lanes unspecified). */
inline VecF32
vmax(VecF32 a, VecF32 b)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_max_ps(a.v, b.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vmaxq_f32(a.v, b.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
#endif
}

// ------------------------------------------------------- conversions

inline VecI32
bitcastToI32(VecF32 a)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_castps_si128(a.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_s32_f32(a.v)};
#else
    VecI32 r;
    std::memcpy(r.v, a.v, sizeof(r.v));
    return r;
#endif
}

inline VecF32
bitcastToF32(VecI32 a)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_castsi128_ps(a.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_f32_s32(a.v)};
#else
    VecF32 r;
    std::memcpy(r.v, a.v, sizeof(r.v));
    return r;
#endif
}

/**
 * Float -> int32 with round-to-nearest-even (the default FP rounding
 * mode, matching std::nearbyint). @pre every lane is finite and fits
 * an int32 after rounding.
 */
inline VecI32
toI32Rtne(VecF32 a)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_cvtps_epi32(a.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vcvtnq_s32_f32(a.v)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(std::nearbyintf(a.v[i]));
    return r;
#endif
}

/** Exact int32 -> float conversion (|lane| < 2^24 stays exact). */
inline VecF32
toF32(VecI32 a)
{
#if defined(MTIA_SIMD_SSE2)
    return {_mm_cvtepi32_ps(a.v)};
#elif defined(MTIA_SIMD_NEON)
    return {vcvtq_f32_s32(a.v)};
#else
    VecF32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<float>(a.v[i]);
    return r;
#endif
}

// ------------------------------------------------ narrow/widen stores

/** Zero-extend four uint16 values into int32 lanes. */
inline VecI32
loadU16AsI32(const std::uint16_t *p)
{
#if defined(MTIA_SIMD_SSE2)
    const __m128i v =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
    return {_mm_unpacklo_epi16(v, _mm_setzero_si128())};
#elif defined(MTIA_SIMD_NEON)
    return {vreinterpretq_s32_u32(vmovl_u16(vld1_u16(p)))};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int32_t>(p[i]);
    return r;
#endif
}

/** Sign-extend four int8 values into int32 lanes. */
inline VecI32
loadI8AsI32(const std::uint8_t *p)
{
#if defined(MTIA_SIMD_SSE2)
    std::int32_t packed;
    std::memcpy(&packed, p, 4);
    __m128i v = _mm_cvtsi32_si128(packed);
    v = _mm_unpacklo_epi8(v, v);
    v = _mm_unpacklo_epi16(v, v);
    return {_mm_srai_epi32(v, 24)};
#else
    VecI32 r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.v[i] = static_cast<std::int8_t>(p[i]);
    return r;
#endif
}

/** Store the low 16 bits of eight int32 lanes (a then b) as uint16. */
inline void
storeLow16(VecI32 a, VecI32 b, std::uint16_t *dst)
{
#if defined(MTIA_SIMD_SSE2)
    // SSE2 lacks an unsigned 32->16 pack; bias into the signed range,
    // pack with (exact, unsaturated) signed saturation, bias back.
    const __m128i bias32 = _mm_set1_epi32(0x8000);
    const __m128i bias16 = _mm_set1_epi16(static_cast<short>(0x8000));
    __m128i p = _mm_packs_epi32(_mm_sub_epi32(a.v, bias32),
                                _mm_sub_epi32(b.v, bias32));
    p = _mm_add_epi16(p, bias16);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst), p);
#elif defined(MTIA_SIMD_NEON)
    const uint16x4_t lo = vmovn_u32(vreinterpretq_u32_s32(a.v));
    const uint16x4_t hi = vmovn_u32(vreinterpretq_u32_s32(b.v));
    vst1q_u16(dst, vcombine_u16(lo, hi));
#else
    for (std::size_t i = 0; i < kLanes; ++i) {
        dst[i] = static_cast<std::uint16_t>(a.v[i]);
        dst[i + kLanes] = static_cast<std::uint16_t>(b.v[i]);
    }
#endif
}

/** Store sixteen int32 lanes as int8 with signed saturation
 * (clamp to [-128, 127]), a..d in order. */
inline void
storeI8Saturate(VecI32 a, VecI32 b, VecI32 c, VecI32 d, std::uint8_t *dst)
{
#if defined(MTIA_SIMD_SSE2)
    const __m128i s16lo = _mm_packs_epi32(a.v, b.v);
    const __m128i s16hi = _mm_packs_epi32(c.v, d.v);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                     _mm_packs_epi16(s16lo, s16hi));
#elif defined(MTIA_SIMD_NEON)
    const int16x8_t s16lo =
        vcombine_s16(vqmovn_s32(a.v), vqmovn_s32(b.v));
    const int16x8_t s16hi =
        vcombine_s16(vqmovn_s32(c.v), vqmovn_s32(d.v));
    const int8x16_t s8 =
        vcombine_s8(vqmovn_s16(s16lo), vqmovn_s16(s16hi));
    vst1q_s8(reinterpret_cast<std::int8_t *>(dst), s8);
#else
    const VecI32 lanes[4] = {a, b, c, d};
    for (std::size_t g = 0; g < 4; ++g) {
        for (std::size_t i = 0; i < kLanes; ++i) {
            std::int32_t x = lanes[g].v[i];
            x = x < -128 ? -128 : (x > 127 ? 127 : x);
            dst[g * kLanes + i] = static_cast<std::uint8_t>(
                static_cast<std::int8_t>(x));
        }
    }
#endif
}

// ---------------------------------------------------- aligned buffer

/**
 * Cache-line-aligned uninitialized-then-zeroed array of a trivially
 * copyable type; move-only. Aligned stores/loads stay on one line and
 * prefetches cover whole rows.
 */
template <typename T> class AlignedBuffer
{
  public:
    AlignedBuffer() = default;

    explicit AlignedBuffer(std::size_t n) : n_(n)
    {
        if (n_ == 0)
            return;
        ptr_ = static_cast<T *>(::operator new(
            n_ * sizeof(T), std::align_val_t{kAlignment}));
        std::memset(static_cast<void *>(ptr_), 0, n_ * sizeof(T));
    }

    AlignedBuffer(AlignedBuffer &&o) noexcept
        : ptr_(std::exchange(o.ptr_, nullptr)),
          n_(std::exchange(o.n_, 0))
    {
    }

    AlignedBuffer &
    operator=(AlignedBuffer &&o) noexcept
    {
        if (this != &o) {
            release();
            ptr_ = std::exchange(o.ptr_, nullptr);
            n_ = std::exchange(o.n_, 0);
        }
        return *this;
    }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    ~AlignedBuffer() { release(); }

    T *data() { return ptr_; }
    const T *data() const { return ptr_; }
    std::size_t size() const { return n_; }
    T &operator[](std::size_t i) { return ptr_[i]; }
    const T &operator[](std::size_t i) const { return ptr_[i]; }

  private:
    void
    release()
    {
        if (ptr_ != nullptr)
            ::operator delete(ptr_, std::align_val_t{kAlignment});
        ptr_ = nullptr;
    }

    T *ptr_ = nullptr;
    std::size_t n_ = 0;
};

// ------------------------------------------------- runtime dispatch

/**
 * Vector ISA tiers the GEMM kernel layer dispatches among at runtime.
 * `Scalar` is the bit-exact reference; every wider tier must produce
 * byte-identical results (same mul-then-add fp chains, vectorized only
 * across independent output columns).
 */
enum class SimdIsa
{
    Scalar = 0,
    Sse2,
    Avx2,
    Avx512,
    Neon,
};

/** Stable lowercase name ("scalar", "sse2", ...) for logs and env. */
const char *isaName(SimdIsa isa);

/**
 * True when the running CPU supports `isa` AND the matching kernel TU
 * was compiled into this binary (AVX2/AVX-512 TUs are built only when
 * the compiler accepts -mavx2/-mavx512f and MTIA_NO_SIMD is off).
 */
bool isaSupported(SimdIsa isa);

/** Widest supported tier on this machine (cpuid-probed, cached). */
SimdIsa detectBestIsa();

/**
 * Tier the GEMM kernels should use right now. Resolution order:
 * innermost thread-local ScopedIsa override, else the cached
 * `MTIA_SIMD_ISA` env override (checked against isaSupported), else
 * detectBestIsa(). Drivers resolve this on the calling thread before
 * fanning out, so pool workers inherit the caller's choice.
 */
SimdIsa activeIsa();

/**
 * RAII thread-local ISA override for tests and tuner sweeps; nests,
 * innermost wins (mirrors core/parallel.h ScopedParallelism). The
 * forced tier must satisfy isaSupported().
 */
class ScopedIsa
{
  public:
    explicit ScopedIsa(SimdIsa isa);
    ~ScopedIsa();
    ScopedIsa(const ScopedIsa &) = delete;
    ScopedIsa &operator=(const ScopedIsa &) = delete;

  private:
    SimdIsa prev_isa_;
    bool prev_active_;
};

} // namespace mtia::simd

#endif // MTIA_CORE_SIMD_H_
