#ifndef MTIA_CORE_NUMERICS_STATS_H_
#define MTIA_CORE_NUMERICS_STATS_H_

/**
 * @file
 * Process-wide counters for the vectorized numerics kernel layer
 * (dtype conversion, codecs, embedding gather). Header-only so the
 * kernels in tensor/, host/, and ops/ can note work without linking
 * telemetry; callers that hold a MetricRegistry publish a snapshot
 * with publishNumericsMetrics().
 *
 * The counters are monotonic totals (relaxed atomics: they are
 * bandwidth attribution, not synchronization), deterministic for a
 * deterministic workload, and resettable for tests/benches.
 */

#include <atomic>
#include <cstdint>

namespace mtia::numerics {

namespace detail {

inline std::atomic<std::uint64_t> &
bytesConvertedCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline std::atomic<std::uint64_t> &
bytesCompressedCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline std::atomic<std::uint64_t> &
gatherRowsCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline std::atomic<std::uint64_t> &
gemmFlopsCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

} // namespace detail

/** Note @p bytes of dtype-conversion input processed by convertBuffer. */
inline void
noteBytesConverted(std::uint64_t bytes)
{
    detail::bytesConvertedCounter().fetch_add(bytes,
                                              std::memory_order_relaxed);
}

/** Note @p bytes of codec input consumed by a compress call. */
inline void
noteBytesCompressed(std::uint64_t bytes)
{
    detail::bytesCompressedCounter().fetch_add(bytes,
                                               std::memory_order_relaxed);
}

/** Note @p rows embedding rows gathered by the TBE kernels. */
inline void
noteGatherRows(std::uint64_t rows)
{
    detail::gatherRowsCounter().fetch_add(rows,
                                          std::memory_order_relaxed);
}

/** Note @p flops (2*m*n*k multiply-adds) done by a GEMM driver call. */
inline void
noteGemmFlops(std::uint64_t flops)
{
    detail::gemmFlopsCounter().fetch_add(flops,
                                         std::memory_order_relaxed);
}

inline std::uint64_t
bytesConverted()
{
    return detail::bytesConvertedCounter().load(std::memory_order_relaxed);
}

inline std::uint64_t
bytesCompressed()
{
    return detail::bytesCompressedCounter().load(std::memory_order_relaxed);
}

inline std::uint64_t
gatherRows()
{
    return detail::gatherRowsCounter().load(std::memory_order_relaxed);
}

inline std::uint64_t
gemmFlops()
{
    return detail::gemmFlopsCounter().load(std::memory_order_relaxed);
}

/** Zero all numerics counters (tests and bench isolation). */
inline void
resetStats()
{
    detail::bytesConvertedCounter().store(0, std::memory_order_relaxed);
    detail::bytesCompressedCounter().store(0, std::memory_order_relaxed);
    detail::gatherRowsCounter().store(0, std::memory_order_relaxed);
    detail::gemmFlopsCounter().store(0, std::memory_order_relaxed);
}

/**
 * Copy the current totals into @p registry as
 * numerics.{bytes_converted,bytes_compressed,gather_rows} counters,
 * following the EventQueue::publishMetrics pattern. Templated so this
 * header stays free of a telemetry dependency; instantiate with
 * telemetry::MetricRegistry.
 */
template <typename Registry>
inline void
publishNumericsMetrics(Registry &registry)
{
    registry.counter("numerics.bytes_converted").inc(bytesConverted());
    registry.counter("numerics.bytes_compressed").inc(bytesCompressed());
    registry.counter("numerics.gather_rows").inc(gatherRows());
    registry.counter("numerics.gemm_flops").inc(gemmFlops());
}

} // namespace mtia::numerics

#endif // MTIA_CORE_NUMERICS_STATS_H_
