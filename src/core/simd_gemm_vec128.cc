/**
 * 128-bit GEMM micro-kernels (SSE2 on x86-64, NEON on AArch64) built
 * on the portable core/simd.h wrappers, so this TU holds no raw
 * intrinsics. Geometry: 4x8 fp32 tile (two VecF32 per row), 4x8 int8
 * tile over int32 lanes. Vector lanes run across output columns only;
 * each element's k-chain is mul-then-add in packed-panel order,
 * byte-identical to the scalar reference.
 */

#include "core/simd_gemm.h"

#if defined(MTIA_SIMD_SSE2) || defined(MTIA_SIMD_NEON)

namespace mtia::simd
{
namespace
{

constexpr int kMr = 4;
constexpr int kNr = 8;

void
vec128TileF32(const float *a, const float *b, float *c, std::int64_t ldc,
              std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr) {
        detail::scalarGemmKernel().f32(a, b, c, ldc, kc, mh, nw);
        return;
    }
    VecF32 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = VecF32::load(c + i * ldc);
        acc[i][1] = VecF32::load(c + i * ldc + 4);
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *bp = b + p * kNr;
        const VecF32 b0 = VecF32::load(bp);
        const VecF32 b1 = VecF32::load(bp + 4);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const VecF32 av = VecF32::broadcast(ap[i]);
            acc[i][0] = acc[i][0] + av * b0;
            acc[i][1] = acc[i][1] + av * b1;
        }
    }
    for (int i = 0; i < kMr; ++i) {
        acc[i][0].store(c + i * ldc);
        acc[i][1].store(c + i * ldc + 4);
    }
}

void
vec128TileI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
             std::int64_t ldc, std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr) {
        detail::scalarGemmKernel().i8(a, b, c, ldc, kc, mh, nw);
        return;
    }
    VecI32 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = VecI32::load(c + i * ldc);
        acc[i][1] = VecI32::load(c + i * ldc + 4);
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        const auto *bp =
            reinterpret_cast<const std::uint8_t *>(b + p * kNr);
        const VecI32 b0 = loadI8AsI32(bp);
        const VecI32 b1 = loadI8AsI32(bp + 4);
        const std::int8_t *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const VecI32 av =
                VecI32::broadcast(static_cast<std::int32_t>(ap[i]));
            acc[i][0] = acc[i][0] + mulLo(av, b0);
            acc[i][1] = acc[i][1] + mulLo(av, b1);
        }
    }
    for (int i = 0; i < kMr; ++i) {
        acc[i][0].store(c + i * ldc);
        acc[i][1].store(c + i * ldc + 4);
    }
}

const GemmMicroKernel kVec128Kernel = {
#if defined(MTIA_SIMD_SSE2)
    SimdIsa::Sse2,
#else
    SimdIsa::Neon,
#endif
    kMr, kNr, &vec128TileF32, kMr, kNr, &vec128TileI8};

} // namespace

namespace detail
{

const GemmMicroKernel &
vec128GemmKernel()
{
    return kVec128Kernel;
}

} // namespace detail

} // namespace mtia::simd

#endif // MTIA_SIMD_SSE2 || MTIA_SIMD_NEON
