#ifndef MTIA_CORE_CHECK_H_
#define MTIA_CORE_CHECK_H_

/**
 * @file
 * Runtime contract checks for simulator invariants.
 *
 * MTIA_CHECK(cond) enforces an invariant in every build; on violation
 * it reports file, line, the stringified condition, and any streamed
 * message, then invokes the installed failure handler. The default
 * handler prints to stderr and aborts, so a violated contract can
 * never produce silently-wrong simulation results. Tests install a
 * throwing handler (ScopedCheckThrow) to assert that a contract fires
 * without killing the test binary.
 *
 * Conventions:
 *  - MTIA_CHECK*   — preconditions and invariants that guard the
 *                    correctness of results; enabled in all builds.
 *  - MTIA_DCHECK*  — hot-path checks (per-element bounds, per-event
 *                    monotonicity); compiled out when NDEBUG is set
 *                    unless MTIA_FORCE_DCHECK is defined.
 *  - MTIA_UNREACHABLE — marks control flow that must never execute
 *                    (e.g. after an exhaustive switch).
 *
 * Check conditions must be side-effect free: a condition that mutates
 * state would behave differently between release and debug builds for
 * MTIA_DCHECK. scripts/check_sim_invariants.py enforces this.
 *
 * Comparison checks evaluate each operand exactly once and print both
 * values on failure:
 *
 *     MTIA_CHECK_LE(when, deadline) << "while scheduling " << name;
 */

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace mtia {

/** Thrown by the handler ScopedCheckThrow installs. */
class CheckFailedError : public std::logic_error
{
  public:
    explicit CheckFailedError(const std::string &what)
        : std::logic_error(what) {}
};

/** Everything known about one contract violation. */
struct CheckContext
{
    const char *file;
    int line;
    /** Condition text, operand values, and any streamed message. */
    std::string message;
};

/**
 * Called when a contract is violated. The handler must not return
 * normally: it either throws (test handlers) or terminates the
 * process. If it does return, the process aborts anyway.
 */
using CheckFailureHandler = void (*)(const CheckContext &);

/** Install @p handler; returns the previously installed handler. */
CheckFailureHandler setCheckFailureHandler(CheckFailureHandler handler);

/** The currently installed handler (the default aborting one if none
 * was explicitly set). */
CheckFailureHandler getCheckFailureHandler();

/** RAII: install a handler for one scope, restoring the old one. */
class ScopedCheckFailureHandler
{
  public:
    explicit ScopedCheckFailureHandler(CheckFailureHandler handler)
        : prev_(setCheckFailureHandler(handler)) {}
    ~ScopedCheckFailureHandler() { setCheckFailureHandler(prev_); }

    ScopedCheckFailureHandler(const ScopedCheckFailureHandler &) = delete;
    ScopedCheckFailureHandler &
    operator=(const ScopedCheckFailureHandler &) = delete;

  private:
    CheckFailureHandler prev_;
};

namespace detail {

/** Handler that throws CheckFailedError (what ScopedCheckThrow uses). */
[[noreturn]] void throwingCheckHandler(const CheckContext &ctx);

} // namespace detail

/**
 * RAII for tests: while alive, a violated contract throws
 * CheckFailedError instead of aborting, so EXPECT_THROW can assert
 * that a precondition fires.
 */
class ScopedCheckThrow : public ScopedCheckFailureHandler
{
  public:
    ScopedCheckThrow()
        : ScopedCheckFailureHandler(&detail::throwingCheckHandler) {}
};

namespace detail {

/**
 * Invoke the installed handler. Never returns: the handler throws or
 * kills the process; if it returns anyway, abort.
 */
[[noreturn]] void checkFailed(const CheckContext &ctx);

/**
 * Accumulates the failure message for one violated check; its
 * destructor (end of the check's full-expression) reports the failure.
 */
class CheckMessageBuilder
{
  public:
    CheckMessageBuilder(const char *file, int line, std::string head)
        : file_(file), line_(line)
    {
        os_ << std::move(head);
    }

    CheckMessageBuilder(const CheckMessageBuilder &) = delete;
    CheckMessageBuilder &operator=(const CheckMessageBuilder &) = delete;

    /** Reports the failure. noexcept(false): the handler may throw. */
    ~CheckMessageBuilder() noexcept(false)
    {
        checkFailed(CheckContext{file_, line_, os_.str()});
    }

    std::ostream &stream() { return os_; }

  private:
    const char *file_;
    int line_;
    std::ostringstream os_;
};

/** Swallows the ostream& so a check expression has type void. */
struct CheckVoidify
{
    void operator&(std::ostream &) const {}
};

/**
 * Evaluate one comparison; on failure return the "a op b (x vs. y)"
 * text, else nullptr. Each operand is evaluated exactly once.
 */
template <typename A, typename B, typename Op>
std::unique_ptr<std::string>
checkOpFailure(const char *head, const A &a, const B &b, Op op)
{
    if (op(a, b)) [[likely]]
        return nullptr;
    std::ostringstream os;
    os << head << " (" << a << " vs. " << b << ")";
    return std::make_unique<std::string>(os.str());
}

// Comparison functors: plain structs (not lambdas) so the macro
// expansion stays cheap and the operand types drive overload
// resolution exactly as the raw operator would.
struct CheckOpEq { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a == b; } };
struct CheckOpNe { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a != b; } };
struct CheckOpLt { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a < b; } };
struct CheckOpLe { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a <= b; } };
struct CheckOpGt { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a > b; } };
struct CheckOpGe { template <typename A, typename B> bool operator()(const A &a, const B &b) const { return a >= b; } };

[[noreturn]] void unreachableImpl(const char *file, int line,
                                  const char *what);

} // namespace detail

/** Enforce @p cond in every build; streams extra context. */
#define MTIA_CHECK(cond) \
    (cond) \
        ? (void)0 \
        : ::mtia::detail::CheckVoidify() & \
          ::mtia::detail::CheckMessageBuilder( \
              __FILE__, __LINE__, "MTIA_CHECK(" #cond ") failed") \
              .stream()

// The while-loop runs at most once: the builder's destructor at the
// end of the body's full-expression throws or terminates.
#define MTIA_CHECK_OP_(opname, functor, a, b) \
    while (auto mtiaCheckFail_ = ::mtia::detail::checkOpFailure( \
               "MTIA_CHECK_" #opname "(" #a ", " #b ") failed", (a), \
               (b), ::mtia::detail::functor{})) \
    ::mtia::detail::CheckVoidify() & \
        ::mtia::detail::CheckMessageBuilder(__FILE__, __LINE__, \
                                            std::move(*mtiaCheckFail_)) \
            .stream()

#define MTIA_CHECK_EQ(a, b) MTIA_CHECK_OP_(EQ, CheckOpEq, a, b)
#define MTIA_CHECK_NE(a, b) MTIA_CHECK_OP_(NE, CheckOpNe, a, b)
#define MTIA_CHECK_LT(a, b) MTIA_CHECK_OP_(LT, CheckOpLt, a, b)
#define MTIA_CHECK_LE(a, b) MTIA_CHECK_OP_(LE, CheckOpLe, a, b)
#define MTIA_CHECK_GT(a, b) MTIA_CHECK_OP_(GT, CheckOpGt, a, b)
#define MTIA_CHECK_GE(a, b) MTIA_CHECK_OP_(GE, CheckOpGe, a, b)

#if !defined(NDEBUG) || defined(MTIA_FORCE_DCHECK)
#define MTIA_DCHECK_ENABLED 1
#else
#define MTIA_DCHECK_ENABLED 0
#endif

#if MTIA_DCHECK_ENABLED
#define MTIA_DCHECK(cond) MTIA_CHECK(cond)
#define MTIA_DCHECK_EQ(a, b) MTIA_CHECK_EQ(a, b)
#define MTIA_DCHECK_NE(a, b) MTIA_CHECK_NE(a, b)
#define MTIA_DCHECK_LT(a, b) MTIA_CHECK_LT(a, b)
#define MTIA_DCHECK_LE(a, b) MTIA_CHECK_LE(a, b)
#define MTIA_DCHECK_GT(a, b) MTIA_CHECK_GT(a, b)
#define MTIA_DCHECK_GE(a, b) MTIA_CHECK_GE(a, b)
#else
// Dead but still type-checked; the operands are never evaluated.
#define MTIA_DCHECK(cond) while (false) MTIA_CHECK(cond)
#define MTIA_DCHECK_EQ(a, b) while (false) MTIA_CHECK_EQ(a, b)
#define MTIA_DCHECK_NE(a, b) while (false) MTIA_CHECK_NE(a, b)
#define MTIA_DCHECK_LT(a, b) while (false) MTIA_CHECK_LT(a, b)
#define MTIA_DCHECK_LE(a, b) while (false) MTIA_CHECK_LE(a, b)
#define MTIA_DCHECK_GT(a, b) while (false) MTIA_CHECK_GT(a, b)
#define MTIA_DCHECK_GE(a, b) while (false) MTIA_CHECK_GE(a, b)
#endif

/** Mark control flow that must never execute. */
#define MTIA_UNREACHABLE(what) \
    ::mtia::detail::unreachableImpl(__FILE__, __LINE__, (what))

} // namespace mtia

#endif // MTIA_CORE_CHECK_H_
