#ifndef MTIA_CORE_INLINE_FUNCTION_H_
#define MTIA_CORE_INLINE_FUNCTION_H_

/**
 * @file
 * InlineFunction: a small-buffer-optimized, move-only callable used on
 * the DES hot path. Unlike std::function it never requires copyability
 * of the target (so event callbacks may own std::unique_ptr state),
 * and any callable whose size fits kInlineCapacity bytes is stored in
 * the object itself — scheduling such a callback performs zero heap
 * allocations. Larger callables fall back to a heap box; storedInline()
 * reports which path a given instance took so the event queue can
 * count inline vs boxed callbacks in telemetry.
 *
 * The capacity is a compile-time contract, not a tuning knob: typical
 * simulator captures (a handful of pointers/references plus a tick or
 * an index) must stay inline. Static-assert that where it matters:
 *
 *     static_assert(InlineFunction<void()>::storesInline<MyLambda>());
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "core/check.h"

namespace mtia {

/**
 * Move-only callable with @p R(Args...) signature and small-buffer
 * storage. Invoking an empty InlineFunction is a contract violation.
 */
template <typename Signature> class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)>
{
  public:
    /** Inline storage: six pointers' worth of capture on LP64. */
    static constexpr std::size_t kInlineCapacity = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when a callable of type @p F is stored inline (no heap). */
    template <typename F>
    static constexpr bool
    storesInline()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= kInlineCapacity &&
            alignof(D) <= kInlineAlign &&
            std::is_nothrow_move_constructible_v<D>;
    }

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    /** Wrap any callable; move-only callables are fully supported. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (storesInline<F>()) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(f));
            invoke_ = &invokeInline<D>;
            if constexpr (isTrivial<D>()) {
                // Trivially relocatable target: moves are a plain
                // 48-byte copy and destruction is a no-op, so the DES
                // hot path never takes an indirect manage call.
                manage_ = nullptr;
            } else {
                manage_ = &manageInline<D>;
            }
            inline_ = true;
        } else {
            ::new (static_cast<void *>(storage_))
                D *(new D(std::forward<F>(f)));
            invoke_ = &invokeBoxed<D>;
            manage_ = &manageBoxed<D>;
            inline_ = false;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** True when a target is set. */
    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    friend bool
    operator==(const InlineFunction &f, std::nullptr_t) noexcept
    {
        return !f;
    }
    friend bool
    operator!=(const InlineFunction &f, std::nullptr_t) noexcept
    {
        return static_cast<bool>(f);
    }

    /** True when the target lives in the inline buffer (no heap box). */
    bool
    storedInline() const noexcept
    {
        return invoke_ != nullptr && inline_;
    }

    /** Invoke the target. @pre *this is non-empty. */
    R
    operator()(Args... args)
    {
        MTIA_CHECK(invoke_ != nullptr)
            << ": invoking an empty InlineFunction";
        return invoke_(storage_, std::forward<Args>(args)...);
    }

  private:
    enum class Op : std::uint8_t { MoveTo, Destroy };

    using InvokeFn = R (*)(unsigned char *, Args &&...);
    /** MoveTo: move-construct src's target into dst, destroy src's. */
    using ManageFn = void (*)(Op, unsigned char *src, unsigned char *dst);

    template <typename D>
    static R
    invokeInline(unsigned char *storage, Args &&...args)
    {
        return (*std::launder(reinterpret_cast<D *>(
            static_cast<void *>(storage))))(std::forward<Args>(args)...);
    }

    template <typename D>
    static void
    manageInline(Op op, unsigned char *src, unsigned char *dst)
    {
        D *target = std::launder(
            reinterpret_cast<D *>(static_cast<void *>(src)));
        if (op == Op::MoveTo)
            ::new (static_cast<void *>(dst)) D(std::move(*target));
        target->~D();
    }

    template <typename D>
    static R
    invokeBoxed(unsigned char *storage, Args &&...args)
    {
        D *boxed = *std::launder(reinterpret_cast<D **>(
            static_cast<void *>(storage)));
        return (*boxed)(std::forward<Args>(args)...);
    }

    template <typename D>
    static void
    manageBoxed(Op op, unsigned char *src, unsigned char *dst)
    {
        D **slot = std::launder(
            reinterpret_cast<D **>(static_cast<void *>(src)));
        if (op == Op::MoveTo) {
            // Transfer box ownership: a pointer move, not a deep move.
            ::new (static_cast<void *>(dst)) D *(*slot);
        } else {
            delete *slot;
        }
        // The pointer itself is trivially destructible; its lifetime
        // ends here either way.
    }

    template <typename D>
    static constexpr bool
    isTrivial()
    {
        return std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>;
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        inline_ = other.inline_;
        if (other.invoke_ != nullptr) {
            if (other.manage_ == nullptr) {
                // Trivially relocatable inline target.
                std::memcpy(storage_, other.storage_, kInlineCapacity);
            } else {
                other.manage_(Op::MoveTo, other.storage_, storage_);
            }
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (invoke_ != nullptr) {
            if (manage_ != nullptr)
                manage_(Op::Destroy, storage_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
    bool inline_ = true;
    alignas(kInlineAlign) unsigned char storage_[kInlineCapacity];
};

} // namespace mtia

#endif // MTIA_CORE_INLINE_FUNCTION_H_
