#include "core/simd.h"

#include <cstdlib>
#include <cstring>

#include "core/check.h"

namespace mtia::simd
{
namespace
{

// Thread-local ScopedIsa stack top (mirrors ScopedParallelism).
thread_local SimdIsa tl_isa = SimdIsa::Scalar;
thread_local bool tl_isa_active = false;

bool
cpuHasIsa(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Sse2:
        // SSE2 is architectural baseline for x86-64.
#if defined(__x86_64__) || defined(_M_X64)
        return true;
#else
        return false;
#endif
    case SimdIsa::Avx2:
#if (defined(__x86_64__) || defined(_M_X64)) &&                         \
    (defined(__GNUC__) || defined(__clang__))
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case SimdIsa::Avx512:
#if (defined(__x86_64__) || defined(_M_X64)) &&                         \
    (defined(__GNUC__) || defined(__clang__))
        return __builtin_cpu_supports("avx512f") != 0;
#else
        return false;
#endif
    case SimdIsa::Neon:
#if defined(__ARM_NEON) && defined(__aarch64__)
        return true;
#else
        return false;
#endif
    }
    MTIA_UNREACHABLE("bad SimdIsa");
}

// Whether the micro-kernel TU for this tier exists in the binary. The
// 128-bit tiers ride on core/simd.h's compile-time backend; the wider
// x86 tiers are separate TUs added by CMake only when the compiler
// accepts their -m flags (MTIA_GEMM_HAVE_* definitions).
bool
tierCompiled(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Sse2:
#if defined(MTIA_SIMD_SSE2)
        return true;
#else
        return false;
#endif
    case SimdIsa::Neon:
#if defined(MTIA_SIMD_NEON)
        return true;
#else
        return false;
#endif
    case SimdIsa::Avx2:
#if defined(MTIA_GEMM_HAVE_AVX2)
        return true;
#else
        return false;
#endif
    case SimdIsa::Avx512:
#if defined(MTIA_GEMM_HAVE_AVX512)
        return true;
#else
        return false;
#endif
    }
    MTIA_UNREACHABLE("bad SimdIsa");
}

SimdIsa
parseIsaName(const char *name)
{
    static constexpr SimdIsa kAll[] = {SimdIsa::Scalar, SimdIsa::Sse2,
                                       SimdIsa::Avx2, SimdIsa::Avx512,
                                       SimdIsa::Neon};
    for (SimdIsa isa : kAll) {
        if (std::strcmp(name, isaName(isa)) == 0)
            return isa;
    }
    MTIA_CHECK(false) << ": MTIA_SIMD_ISA='" << name
                      << "' is not one of scalar/sse2/avx2/avx512/neon";
    return SimdIsa::Scalar;
}

} // namespace

const char *
isaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return "scalar";
    case SimdIsa::Sse2:
        return "sse2";
    case SimdIsa::Avx2:
        return "avx2";
    case SimdIsa::Avx512:
        return "avx512";
    case SimdIsa::Neon:
        return "neon";
    }
    MTIA_UNREACHABLE("bad SimdIsa");
}

bool
isaSupported(SimdIsa isa)
{
    return cpuHasIsa(isa) && tierCompiled(isa);
}

SimdIsa
detectBestIsa()
{
    static const SimdIsa best = [] {
        static constexpr SimdIsa kWidestFirst[] = {
            SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon, SimdIsa::Sse2};
        for (SimdIsa isa : kWidestFirst) {
            if (isaSupported(isa))
                return isa;
        }
        return SimdIsa::Scalar;
    }();
    return best;
}

SimdIsa
activeIsa()
{
    if (tl_isa_active)
        return tl_isa;
    static const SimdIsa env_or_best = [] {
        const char *env = std::getenv("MTIA_SIMD_ISA");
        if (env != nullptr && *env != '\0') {
            const SimdIsa forced = parseIsaName(env);
            MTIA_CHECK(isaSupported(forced))
                << ": MTIA_SIMD_ISA=" << isaName(forced)
                << " is not supported on this machine/build";
            return forced;
        }
        return detectBestIsa();
    }();
    return env_or_best;
}

ScopedIsa::ScopedIsa(SimdIsa isa)
    : prev_isa_(tl_isa), prev_active_(tl_isa_active)
{
    MTIA_CHECK(isaSupported(isa))
        << ": ScopedIsa(" << isaName(isa)
        << ") is not supported on this machine/build";
    tl_isa = isa;
    tl_isa_active = true;
}

ScopedIsa::~ScopedIsa()
{
    tl_isa = prev_isa_;
    tl_isa_active = prev_active_;
}

} // namespace mtia::simd
