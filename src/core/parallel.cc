#include "core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "core/check.h"

namespace mtia {

namespace {

// Set while a thread is executing a shard; a nested parallel region
// on such a thread runs inline and serially.
thread_local bool tls_in_parallel_region = false;

// Innermost ScopedParallelism on this thread (tests / serial timing).
thread_local ThreadPool *tls_override_pool = nullptr;
thread_local unsigned tls_override_lanes = 0;
thread_local bool tls_override_active = false;

unsigned
envLanes()
{
    // MTIA_THREADS >= 1 pins the lane count; unset/invalid falls back
    // to the hardware concurrency. Read once: the pool is fixed-size.
    static const unsigned lanes = [] {
        if (const char *env = std::getenv("MTIA_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return static_cast<unsigned>(v);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1u : hw;
    }();
    return lanes;
}

ThreadPool &
globalPool()
{
    static ThreadPool pool(envLanes() - 1);
    return pool;
}

} // namespace

struct ThreadPool::Impl
{
    std::mutex mu;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> threads;
    // Published job: bumping the generation releases the workers.
    const std::function<void(unsigned)> *fn = nullptr;
    unsigned shards = 0;
    std::uint64_t generation = 0;
    unsigned remaining = 0;
    bool stop = false;

    void
    workerLoop(unsigned worker)
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
            work_cv.wait(lock, [&] {
                return stop || generation != seen;
            });
            if (stop)
                return;
            seen = generation;
            const unsigned my_shard = worker + 1;
            if (my_shard >= shards)
                continue; // not participating in this job
            const auto *job = fn;
            lock.unlock();
            tls_in_parallel_region = true;
            (*job)(my_shard);
            tls_in_parallel_region = false;
            lock.lock();
            if (--remaining == 0)
                done_cv.notify_all();
        }
    }
};

ThreadPool::ThreadPool(unsigned workers) : impl_(new Impl)
{
    impl_->threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        impl_->threads.emplace_back([this, w] { impl_->workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread &t : impl_->threads)
        t.join();
    delete impl_;
}

unsigned
ThreadPool::workers() const
{
    return static_cast<unsigned>(impl_->threads.size());
}

void
ThreadPool::run(unsigned shards, const std::function<void(unsigned)> &fn)
{
    MTIA_CHECK_GT(shards, 0u) << ": ThreadPool::run with no shards";
    MTIA_CHECK_LE(shards, workers() + 1)
        << ": more shards than pool lanes (static sharding only)";
    if (shards == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->fn = &fn;
        impl_->shards = shards;
        impl_->remaining = shards - 1;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    // Shard 0 runs here; a nested parallel region inside it must run
    // inline rather than re-entering the pool.
    const bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    std::exception_ptr caller_error;
    try {
        fn(0);
    } catch (...) {
        caller_error = std::current_exception();
    }
    tls_in_parallel_region = was_in_region;
    {
        std::unique_lock<std::mutex> lock(impl_->mu);
        impl_->done_cv.wait(lock, [&] { return impl_->remaining == 0; });
    }
    if (caller_error)
        std::rethrow_exception(caller_error);
}

ScopedParallelism::ScopedParallelism(unsigned lanes)
    : prev_pool_(tls_override_pool),
      prev_lanes_(tls_override_lanes),
      prev_active_(tls_override_active)
{
    MTIA_CHECK_GT(lanes, 0u) << ": ScopedParallelism needs >= 1 lane";
    tls_override_lanes = lanes;
    tls_override_pool = lanes > 1 ? new ThreadPool(lanes - 1) : nullptr;
    tls_override_active = true;
}

ScopedParallelism::~ScopedParallelism()
{
    delete tls_override_pool;
    tls_override_pool = static_cast<ThreadPool *>(prev_pool_);
    tls_override_lanes = prev_lanes_;
    tls_override_active = prev_active_;
}

unsigned
parallelLanes()
{
    if (tls_in_parallel_region)
        return 1;
    if (tls_override_active)
        return tls_override_lanes;
    return envLanes();
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    const unsigned lanes = parallelLanes();
    const std::size_t shards =
        std::min<std::size_t>(lanes, n);
    if (shards <= 1) {
        // The exact legacy serial path: same thread, same order.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Static contiguous sharding: shard s owns [s*n/S, (s+1)*n/S).
    // Exceptions surface deterministically: the lowest-indexed shard's
    // error wins regardless of which thread faulted first.
    std::vector<std::exception_ptr> errors(shards);
    const std::function<void(unsigned)> shard_body =
        [&](unsigned s) {
            const std::size_t lo = n * s / shards;
            const std::size_t hi = n * (s + 1) / shards;
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    body(i);
            } catch (...) {
                errors[s] = std::current_exception();
            }
        };

    ThreadPool &pool =
        tls_override_active && tls_override_pool != nullptr
            ? *tls_override_pool
            : globalPool();
    pool.run(static_cast<unsigned>(shards), shard_body);

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

void
parallelPhases(std::size_t n,
               const std::function<void(std::size_t)> &body,
               const std::function<bool()> &between)
{
    MTIA_CHECK(between != nullptr)
        << ": parallelPhases needs a between-phase callback";
    // Each phase is one full parallelFor (which is itself a barrier:
    // it blocks until every index ran), so between() always observes
    // a quiescent phase and runs serially on the caller.
    do {
        parallelFor(n, body);
    } while (between());
}

} // namespace mtia
