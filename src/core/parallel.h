#ifndef MTIA_CORE_PARALLEL_H_
#define MTIA_CORE_PARALLEL_H_

/**
 * @file
 * Deterministic parallel execution for the expensive fan-outs: the
 * autotuner sweeps (Section 4.1), the fleet Monte-Carlo studies
 * (Sections 5.1-5.3), the A/B harness, and the bench sweeps.
 *
 * The design rule is *static sharding, index-ordered reduction*: work
 * over [0, n) is split into contiguous chunks fixed before any thread
 * runs (no work stealing), every index's task must be a pure function
 * of its index (plus read-only captures), and results are written to
 * slot i and reduced in index order. Under that rule the output is
 * byte-identical to the serial path regardless of thread count or
 * schedule — which is what lets the golden-trace and bench-report
 * determinism tests keep passing while the wall clock drops.
 *
 * Randomized tasks follow the Rng::fork discipline: the caller holds
 * one base generator and hands task i the substream base.fork(i),
 * never a shared stream whose consumption order would depend on the
 * schedule.
 *
 * Thread count: the MTIA_THREADS environment variable when set (>= 1;
 * 1 restores the exact legacy serial path, executing inline on the
 * calling thread), otherwise the hardware concurrency. Tests pin a
 * count in-process with ScopedParallelism.
 *
 * Nested parallel regions run inline and serially on the worker that
 * spawned them — no deadlocks, no surprise oversubscription, and the
 * same bytes out.
 */

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace mtia {

/**
 * Parallelism the harness would use right now: the innermost live
 * ScopedParallelism if any, else MTIA_THREADS, else the hardware
 * concurrency. Always >= 1. Inside a parallel region this is 1 (a
 * nested region runs inline).
 */
unsigned parallelLanes();

/**
 * A fixed-size thread pool. parallelFor/parallelMap dispatch onto a
 * process-wide pool; tests may build private pools through
 * ScopedParallelism instead. Workers are created once in the
 * constructor and joined in the destructor — the pool never grows,
 * shrinks, or steals work.
 */
class ThreadPool
{
  public:
    /** A pool running shards on @p workers threads plus the caller. */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker-thread count (lanes are workers() + 1: the caller). */
    unsigned workers() const;

    /**
     * Run @p fn(shard) for every shard in [0, shards), shard 0 on the
     * calling thread and shard s > 0 on worker s - 1, blocking until
     * all complete. @pre shards <= workers() + 1. If any shard throws,
     * the lowest-indexed exception is rethrown on the caller.
     */
    void run(unsigned shards, const std::function<void(unsigned)> &fn);

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * RAII parallelism override for tests and serial baseline timing:
 * while alive, parallelFor/parallelMap on this thread use exactly
 * @p lanes lanes (a private pool when lanes > 1, inline when 1),
 * independent of MTIA_THREADS and the hardware. Scopes nest; the
 * innermost wins.
 */
class ScopedParallelism
{
  public:
    explicit ScopedParallelism(unsigned lanes);
    ~ScopedParallelism();

    ScopedParallelism(const ScopedParallelism &) = delete;
    ScopedParallelism &operator=(const ScopedParallelism &) = delete;

  private:
    void *prev_pool_;
    unsigned prev_lanes_;
    bool prev_active_;
};

/**
 * Run @p body(i) for every i in [0, n), sharded statically over the
 * available lanes. @p body must treat distinct indices independently:
 * no shared mutable state, no order-dependent accumulation. Blocks
 * until every index has run; rethrows the lowest-indexed exception.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body);

/**
 * Barrier-phased parallel execution for conservative time-windowed
 * simulation: repeatedly run @p body(i) for every i in [0, n) (one
 * parallelFor — a full barrier — per phase), then run @p between()
 * serially on the calling thread; stop when @p between() returns
 * false. @p between is also the only place shared state may be
 * touched: during a phase the usual parallelFor rule applies (each
 * index owns its slot, no cross-index mutation). The phase/barrier
 * alternation is identical at any lane count, so a body that is
 * deterministic per index keeps the whole loop byte-identical —
 * the property the partitioned DES (sim/parallel_des.h) builds on.
 */
void parallelPhases(std::size_t n,
                    const std::function<void(std::size_t)> &body,
                    const std::function<bool()> &between);

/**
 * Map i -> fn(i) over [0, n), returning results in index order. The
 * result type must be default-constructible and must not be bool
 * (std::vector<bool> shares words between slots). Determinism: same
 * inputs give byte-identical output at any thread count.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
{
    using T = std::decay_t<decltype(fn(std::size_t{0}))>;
    static_assert(!std::is_same_v<T, bool>,
                  "parallelMap result slots must be independent; "
                  "vector<bool> packs bits");
    std::vector<T> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace mtia

#endif // MTIA_CORE_PARALLEL_H_
