#include "core/simd_gemm.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"
#include "core/numerics_stats.h"
#include "core/parallel.h"

namespace mtia::simd
{
namespace
{

// ------------------------------------------ scalar micro-kernels
//
// These ARE the reference chains: for each C element, a single
// sequential fp32 accumulation over the packed strips, mul then add.
// Every vector tier reproduces exactly these per-element chains.

void
scalarTileF32(const float *a, const float *b, float *c, std::int64_t ldc,
              std::int64_t kc, int mh, int nw)
{
    for (int i = 0; i < mh; ++i) {
        for (int j = 0; j < nw; ++j) {
            float acc = c[i * ldc + j];
            for (std::int64_t p = 0; p < kc; ++p)
                acc += a[p * mh + i] * b[p * nw + j];
            c[i * ldc + j] = acc;
        }
    }
}

void
scalarTileI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
             std::int64_t ldc, std::int64_t kc, int mh, int nw)
{
    for (int i = 0; i < mh; ++i) {
        for (int j = 0; j < nw; ++j) {
            std::int32_t acc = c[i * ldc + j];
            for (std::int64_t p = 0; p < kc; ++p)
                acc += static_cast<std::int32_t>(a[p * mh + i]) *
                       static_cast<std::int32_t>(b[p * nw + j]);
            c[i * ldc + j] = acc;
        }
    }
}

// --------------------------------------------------- packing helpers
//
// Pure elementwise data movement; identical regardless of tier or
// thread count. B is packed panel-major: panel p (rows [k0,k1)) lives
// at b_pack + k0*n, as nr-wide column strips laid out sequentially so
// the strip starting at column j0 sits at offset kcp*j0, with layout
// strip[p*nw + j]. A row blocks pack as mr-tall strips, strip at row
// offset is*kcp, layout strip[p*mh + i].

template <typename T>
void
packBPanel(const T *b, T *dst, std::int64_t n, std::int64_t k0,
           std::int64_t kcp, int nr)
{
    for (std::int64_t j0 = 0; j0 < n; j0 += nr) {
        const std::int64_t nw = std::min<std::int64_t>(nr, n - j0);
        T *strip = dst + kcp * j0;
        for (std::int64_t p = 0; p < kcp; ++p) {
            const T *src = b + (k0 + p) * n + j0;
            for (std::int64_t j = 0; j < nw; ++j)
                strip[p * nw + j] = src[j];
        }
    }
}

template <typename T>
void
packABlock(const T *a, T *dst, std::int64_t lda, std::int64_t i0,
           std::int64_t mb, std::int64_t k0, std::int64_t kcp, int mr)
{
    for (std::int64_t is = 0; is < mb; is += mr) {
        const std::int64_t mh = std::min<std::int64_t>(mr, mb - is);
        T *strip = dst + is * kcp;
        for (std::int64_t p = 0; p < kcp; ++p)
            for (std::int64_t i = 0; i < mh; ++i)
                strip[p * mh + i] = a[(i0 + is + i) * lda + k0 + p];
    }
}

const GemmMicroKernel kScalarKernel = {SimdIsa::Scalar, 4,  4,
                                       &scalarTileF32,  4,  4,
                                       &scalarTileI8};

std::int64_t
sanitized(std::int64_t v)
{
    return std::max<std::int64_t>(1, v);
}

// Shared driver skeleton for the f32/int8 element types.
template <typename T, typename Acc>
void
gemmDriver(const T *a, const T *b, Acc *c, std::int64_t m, std::int64_t n,
           std::int64_t k, int mr, int nr,
           void (*tile)(const T *, const T *, Acc *, std::int64_t,
                        std::int64_t, int, int),
           const GemmBlocking &blk,
           void (*epilogue)(void *, std::int64_t, std::int64_t),
           void *epilogue_arg)
{
    const std::int64_t mc = sanitized(blk.mc);
    const std::int64_t kc = sanitized(blk.kc);
    // Round the column block up to a whole number of strips so jc
    // boundaries never split a packed strip.
    const std::int64_t ncr =
        ((sanitized(blk.nc) + nr - 1) / nr) * static_cast<std::int64_t>(nr);

    const std::int64_t np = (k + kc - 1) / kc;

    // Pack B once per call; panels are disjoint output regions.
    AlignedBuffer<T> b_pack(static_cast<std::size_t>(std::max<std::int64_t>(
        1, k * n)));
    T *b_pack_ptr = b_pack.data();
    parallelFor(static_cast<std::size_t>(np), [&](std::size_t pz) {
        const std::int64_t k0 = static_cast<std::int64_t>(pz) * kc;
        const std::int64_t kcp = std::min(kc, k - k0);
        packBPanel(b, b_pack_ptr + k0 * n, n, k0, kcp, nr);
    });

    const std::int64_t nb = (m + mc - 1) / mc;
    parallelFor(static_cast<std::size_t>(nb), [&](std::size_t rbz) {
        const std::int64_t i0 = static_cast<std::int64_t>(rbz) * mc;
        const std::int64_t mb = std::min(mc, m - i0);
        std::memset(static_cast<void *>(c + i0 * n), 0,
                    static_cast<std::size_t>(mb * n) * sizeof(Acc));
        AlignedBuffer<T> a_pack(static_cast<std::size_t>(mc * kc));
        for (std::int64_t p = 0; p < np; ++p) {
            const std::int64_t k0 = p * kc;
            const std::int64_t kcp = std::min(kc, k - k0);
            packABlock(a, a_pack.data(), k, i0, mb, k0, kcp, mr);
            const T *b_panel = b_pack_ptr + k0 * n;
            for (std::int64_t jc = 0; jc < n; jc += ncr) {
                const std::int64_t jc_end = std::min(n, jc + ncr);
                for (std::int64_t j0 = jc; j0 < jc_end; j0 += nr) {
                    const std::int64_t nw =
                        std::min<std::int64_t>(nr, n - j0);
                    for (std::int64_t is = 0; is < mb; is += mr) {
                        const std::int64_t mh =
                            std::min<std::int64_t>(mr, mb - is);
                        tile(a_pack.data() + is * kcp,
                             b_panel + kcp * j0,
                             c + (i0 + is) * n + j0, n, kcp,
                             static_cast<int>(mh), static_cast<int>(nw));
                    }
                }
            }
        }
        if (epilogue != nullptr)
            epilogue(epilogue_arg, i0, i0 + mb);
    });
}

} // namespace

namespace detail
{

const GemmMicroKernel &
scalarGemmKernel()
{
    return kScalarKernel;
}

} // namespace detail

const GemmMicroKernel &
microKernel(SimdIsa isa)
{
    MTIA_CHECK(isaSupported(isa))
        << ": microKernel(" << isaName(isa) << ") not supported here";
    switch (isa) {
    case SimdIsa::Scalar:
        return detail::scalarGemmKernel();
    case SimdIsa::Sse2:
    case SimdIsa::Neon:
#if defined(MTIA_SIMD_SSE2) || defined(MTIA_SIMD_NEON)
        return detail::vec128GemmKernel();
#else
        break;
#endif
    case SimdIsa::Avx2:
#if defined(MTIA_GEMM_HAVE_AVX2)
        return detail::avx2GemmKernel();
#else
        break;
#endif
    case SimdIsa::Avx512:
#if defined(MTIA_GEMM_HAVE_AVX512)
        return detail::avx512GemmKernel();
#else
        break;
#endif
    }
    MTIA_UNREACHABLE("microKernel: tier not compiled in");
}

void
gemmF32(const float *a, const float *b, float *c, std::int64_t m,
        std::int64_t n, std::int64_t k, SimdIsa isa,
        const GemmBlocking &blk,
        void (*epilogue)(void *, std::int64_t, std::int64_t),
        void *epilogue_arg)
{
    MTIA_CHECK(m >= 0 && n >= 0 && k >= 0)
        << ": gemmF32 negative shape " << m << "x" << k << "x" << n;
    if (m == 0 || n == 0)
        return;
    const GemmMicroKernel &mk = microKernel(isa);
    gemmDriver<float, float>(a, b, c, m, n, k, mk.mr, mk.nr, mk.f32, blk,
                             epilogue, epilogue_arg);
    numerics::noteGemmFlops(2 * m * n * k);
}

void
gemmI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
       std::int64_t m, std::int64_t n, std::int64_t k, SimdIsa isa,
       const GemmBlocking &blk,
       void (*epilogue)(void *, std::int64_t, std::int64_t),
       void *epilogue_arg)
{
    MTIA_CHECK(m >= 0 && n >= 0 && k >= 0)
        << ": gemmI8 negative shape " << m << "x" << k << "x" << n;
    // k*16384 must stay below 2^31 so int32 partial sums are exact in
    // any accumulation order (|int8 product| <= 16384).
    MTIA_CHECK_LE(k, 131071) << ": gemmI8 depth overflows int32 lanes";
    if (m == 0 || n == 0)
        return;
    const GemmMicroKernel &mk = microKernel(isa);
    gemmDriver<std::int8_t, std::int32_t>(a, b, c, m, n, k, mk.mr8, mk.nr8,
                                          mk.i8, blk, epilogue,
                                          epilogue_arg);
    numerics::noteGemmFlops(2 * m * n * k);
}

} // namespace mtia::simd
