#include "core/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mtia {

namespace {

[[noreturn]] void
abortingCheckHandler(const CheckContext &ctx)
{
    std::fprintf(stderr, "check failed: %s (%s:%d)\n",
                 ctx.message.c_str(), ctx.file, ctx.line);
    std::abort();
}

std::atomic<CheckFailureHandler> g_handler{&abortingCheckHandler};

} // namespace

CheckFailureHandler
setCheckFailureHandler(CheckFailureHandler handler)
{
    if (handler == nullptr)
        handler = &abortingCheckHandler;
    return g_handler.exchange(handler);
}

CheckFailureHandler
getCheckFailureHandler()
{
    return g_handler.load();
}

namespace detail {

void
throwingCheckHandler(const CheckContext &ctx)
{
    throw CheckFailedError(std::string(ctx.file) + ":" +
                           std::to_string(ctx.line) + ": " + ctx.message);
}

void
checkFailed(const CheckContext &ctx)
{
    g_handler.load()(ctx);
    // A conforming handler throws or terminates; refuse to continue
    // past a violated contract regardless.
    std::fprintf(stderr,
                 "check failure handler returned; aborting (%s:%d)\n",
                 ctx.file, ctx.line);
    std::abort();
}

void
unreachableImpl(const char *file, int line, const char *what)
{
    checkFailed(CheckContext{
        file, line, std::string("MTIA_UNREACHABLE: ") + what});
}

} // namespace detail

} // namespace mtia
