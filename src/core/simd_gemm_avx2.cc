/**
 * AVX2 GEMM micro-kernels: 4x16 fp32 tile (two __m256 per row), 4x8
 * int8 tile over __m256i int32 lanes. Compiled with -mavx2 only (no
 * -mfma, and the build forces -ffp-contract=off), so the fp chains
 * stay mul-then-add — byte-identical to the scalar reference. This TU
 * is added by CMake only when the compiler accepts -mavx2; raw
 * intrinsics are sanctioned here by the raw-intrinsics lint rule's
 * src/core/simd* carve-out.
 */

#include "core/simd_gemm.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace mtia::simd
{
namespace
{

constexpr int kMr = 4;
constexpr int kNr = 16;
constexpr int kNr8 = 8;

void
avx2TileF32(const float *a, const float *b, float *c, std::int64_t ldc,
            std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr) {
        detail::scalarGemmKernel().f32(a, b, c, ldc, kc, mh, nw);
        return;
    }
    __m256 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm256_loadu_ps(c + i * ldc);
        acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *bp = b + p * kNr;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const __m256 av = _mm256_set1_ps(ap[i]);
            acc[i][0] = _mm256_add_ps(acc[i][0], _mm256_mul_ps(av, b0));
            acc[i][1] = _mm256_add_ps(acc[i][1], _mm256_mul_ps(av, b1));
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm256_storeu_ps(c + i * ldc, acc[i][0]);
        _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
    }
}

void
avx2TileI8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
           std::int64_t ldc, std::int64_t kc, int mh, int nw)
{
    if (mh != kMr || nw != kNr8) {
        detail::scalarGemmKernel().i8(a, b, c, ldc, kc, mh, nw);
        return;
    }
    __m256i acc[kMr];
    for (int i = 0; i < kMr; ++i)
        acc[i] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(c + i * ldc));
    for (std::int64_t p = 0; p < kc; ++p) {
        const __m256i bv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(b + p * kNr8)));
        const std::int8_t *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            const __m256i av =
                _mm256_set1_epi32(static_cast<std::int32_t>(ap[i]));
            acc[i] = _mm256_add_epi32(acc[i],
                                      _mm256_mullo_epi32(av, bv));
        }
    }
    for (int i = 0; i < kMr; ++i)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(c + i * ldc),
                            acc[i]);
}

const GemmMicroKernel kAvx2Kernel = {SimdIsa::Avx2, kMr,  kNr,
                                     &avx2TileF32,  kMr,  kNr8,
                                     &avx2TileI8};

} // namespace

namespace detail
{

const GemmMicroKernel &
avx2GemmKernel()
{
    return kAvx2Kernel;
}

} // namespace detail

} // namespace mtia::simd

#endif // __AVX2__
