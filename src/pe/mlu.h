#ifndef MTIA_PE_MLU_H_
#define MTIA_PE_MLU_H_

/**
 * @file
 * Memory Layout Unit: fixed-function transpose / concatenate /
 * reshape. The Section 6 case study replaces a Slice-Reshape-Concat
 * operator chain in the MHA blocks with one custom transpose through
 * this unit.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mtia {

/** Fixed-function layout transformations. */
class MemoryLayoutUnit
{
  public:
    /** Transpose a rank-2 tensor. */
    static Tensor transpose(const Tensor &t);

    /** Permute a rank-3 tensor's dimensions by @p perm. */
    static Tensor permute3(const Tensor &t,
                           const std::array<int, 3> &perm);

    /** Concatenate rank-2 tensors along @p axis (0 or 1). */
    static Tensor concat(const std::vector<Tensor> &parts, int axis);

    /** Slice rows [begin, end) of a rank-2 tensor. */
    static Tensor sliceRows(const Tensor &t, std::int64_t begin,
                            std::int64_t end);

    /** Reshape without moving data. */
    static Tensor reshape(const Tensor &t, Shape new_shape);
};

} // namespace mtia

#endif // MTIA_PE_MLU_H_
