#ifndef MTIA_PE_SIMD_ENGINE_H_
#define MTIA_PE_SIMD_ENGINE_H_

/**
 * @file
 * SIMD Engine: the per-PE vector unit used for quantization and
 * nonlinear functions. Nonlinearities are approximated with lookup
 * tables plus linear interpolation, exactly as the hardware's LUT
 * block does; the LUT memory is small, which is why Section 4.3's
 * ragged-attention gather had to run piecewise through it.
 *
 * Functional results go through the real LUT approximation so that
 * A/B parity experiments see genuine approximation error.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mtia {

/** Nonlinearities the SIMD engine accelerates. */
enum class Nonlinearity : std::uint8_t {
    Relu,
    Sigmoid,
    Tanh,
    Gelu,
    Exp,
    Rsqrt,
    Silu,
};

/** Human-readable name. */
std::string nonlinearityName(Nonlinearity f);

/** Exact (libm) reference implementation. */
float nonlinearityExact(Nonlinearity f, float x);

/**
 * A piecewise-linear lookup table over a clamped input range,
 * modeling the SIMD engine's LUT block.
 */
class LookupTable
{
  public:
    /**
     * Build a LUT for @p fn over [lo, hi] with @p entries segments.
     * Inputs outside the range clamp to the endpoints' values.
     */
    LookupTable(std::function<float(float)> fn, float lo, float hi,
                unsigned entries);

    /** Evaluate via table lookup + linear interpolation. */
    float evaluate(float x) const;

    /** Table memory footprint in bytes (fp32 entries). */
    std::size_t sizeBytes() const { return table_.size() * 4; }

    float lo() const { return lo_; }
    float hi() const { return hi_; }

  private:
    float lo_;
    float hi_;
    float step_;
    std::vector<float> table_;
};

/** Static SIMD-engine parameters (per PE). */
struct SimdConfig
{
    /** Elementwise ops per cycle for FP32/BF16 (MTIA 2i: uniform
     * throughput across dtypes; calibrated so 64 PEs at 1.35 GHz give
     * 5.5 TOPS). */
    unsigned lanes = 64;
    /** LUT capacity in entries; small, forcing piecewise loading for
     * large gather tables. */
    unsigned lut_entries = 1024;
};

/** The per-PE vector unit. */
class SimdEngine
{
  public:
    explicit SimdEngine(SimdConfig cfg = {});

    const SimdConfig &config() const { return cfg_; }

    /** Apply a nonlinearity elementwise via the LUT path. */
    Tensor apply(Nonlinearity f, const Tensor &x) const;

    /** Apply the exact function (used as the GPU/reference baseline). */
    static Tensor applyExact(Nonlinearity f, const Tensor &x);

    /** Single-element LUT-path evaluation, identical to apply()'s
     * per-element math (ReLU exact on the ALUs, LUT otherwise). Used
     * by the fused GEMM epilogues in ops/gemm_kernels. */
    float applyOne(Nonlinearity f, float x) const;

    /** Max LUT approximation error over [lo, hi] sampled densely. */
    double maxLutError(Nonlinearity f, float lo, float hi) const;

    /** Elementwise ops per second at clock @p ghz. */
    double opsPerSec(double ghz) const
    {
        return static_cast<double>(cfg_.lanes) * ghz * 1e9;
    }

  private:
    const LookupTable &tableFor(Nonlinearity f) const;

    SimdConfig cfg_;
    std::vector<LookupTable> tables_;
};

} // namespace mtia

#endif // MTIA_PE_SIMD_ENGINE_H_
