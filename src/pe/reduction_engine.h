#ifndef MTIA_PE_REDUCTION_ENGINE_H_
#define MTIA_PE_REDUCTION_ENGINE_H_

/**
 * @file
 * Reduction Engine: accumulates matmul partial results arriving over
 * the dedicated reduction network, forwards them to the neighbouring
 * PE or hands them to the SIMD engine. Also produces the per-row
 * min/max needed for dynamic INT8 quantization (Section 3.3).
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mtia {

/** Per-row min/max pair emitted after accumulation. */
struct RowMinMax
{
    float min = 0.0f;
    float max = 0.0f;

    /** Symmetric quantization scale derived from the extrema. */
    float
    symmetricScale() const
    {
        const float amax = std::max(std::abs(min), std::abs(max));
        return amax / 127.0f;
    }
};

/** The per-PE accumulation unit. */
class ReductionEngine
{
  public:
    /**
     * Accumulate @p partial into @p acc elementwise (both rank-2,
     * FP32), modeling the reduce step between neighbouring PEs.
     */
    static void accumulate(Tensor &acc, const Tensor &partial);

    /**
     * Tree-reduce partials from a column of PEs, as the reduction
     * network chains them.
     */
    static Tensor reduceAll(const std::vector<Tensor> &partials);

    /** Per-row extrema of a rank-2 tensor (for dynamic quant). */
    static std::vector<RowMinMax> rowMinMax(const Tensor &t);
};

} // namespace mtia

#endif // MTIA_PE_REDUCTION_ENGINE_H_
