#ifndef MTIA_PE_COMMAND_PROCESSOR_H_
#define MTIA_PE_COMMAND_PROCESSOR_H_

/**
 * @file
 * Command Processor: orchestrates the fixed-function units. Exposes
 * the hardware-managed Circular Buffer abstraction over Local Memory
 * and models the custom-instruction issue path whose bottleneck
 * motivated the Section 3.3 ISA additions (multi-context GEMM
 * instructions, auto-increment offsets, indexed DMA_IN, and 128-row
 * SIMD accumulation).
 */

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/**
 * The hardware circular-buffer abstraction: a ring of fixed-size
 * slots in Local Memory whose producer/consumer credits the CP tracks
 * on behalf of the programmer.
 */
class CircularBuffer
{
  public:
    CircularBuffer(unsigned slots, Bytes slot_bytes);

    unsigned slots() const { return slots_; }
    Bytes slotBytes() const { return slot_bytes_; }
    Bytes footprint() const { return slots_ * slot_bytes_; }

    unsigned occupied() const { return occupied_; }
    bool full() const { return occupied_ == slots_; }
    bool empty() const { return occupied_ == 0; }

    /** Producer pushes one slot; returns false (stall) when full. */
    bool push();

    /** Consumer pops one slot; returns false (stall) when empty. */
    bool pop();

    std::uint64_t producerStalls() const { return producer_stalls_; }
    std::uint64_t consumerStalls() const { return consumer_stalls_; }

  private:
    unsigned slots_;
    Bytes slot_bytes_;
    unsigned occupied_ = 0;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    std::uint64_t producer_stalls_ = 0;
    std::uint64_t consumer_stalls_ = 0;
};

/** ISA feature set of the custom-instruction path. MTIA 1 lacks all
 * of these; MTIA 2i adds them to unblock the issue bottleneck. */
struct IsaFeatures
{
    bool multi_context = true;   ///< avoid re-writing custom registers
    bool auto_increment = true;  ///< address bump folded into the issue
    bool indexed_dma = true;     ///< DMA_IN computes address from index
    bool unaligned_dma = true;   ///< no software alignment fix-up
    unsigned accum_rows = 128;   ///< rows per SIMD accumulation instr

    /** The MTIA 1-era baseline. */
    static IsaFeatures
    mtia1()
    {
        return {false, false, false, false, 32};
    }
};

/**
 * Issue-path model: counts the custom instructions (plus per-
 * instruction scalar-core overhead cycles) a kernel needs, which
 * bounds throughput for small shapes and sparse operators.
 */
class CommandProcessor
{
  public:
    explicit CommandProcessor(IsaFeatures features = {})
        : features_(features) {}

    const IsaFeatures &features() const { return features_; }

    /**
     * Custom instructions to run an M x N x K GEMM on one PE given
     * 32-wide tiling. Without multi-context every tile re-writes the
     * context registers; without auto-increment every K-step issues
     * an extra offset update.
     */
    std::uint64_t gemmInstructions(std::int64_t m, std::int64_t n,
                                   std::int64_t k) const;

    /**
     * Custom instructions for a TBE kernel fetching @p rows embedding
     * rows and pooling them: a DMA_IN per row (plus address-compute
     * overhead without indexed DMA, plus fix-up without unaligned
     * support) and one accumulation instruction per accum_rows rows.
     */
    std::uint64_t tbeInstructions(std::uint64_t rows) const;

    /** Scalar-core cycles to issue one custom instruction. */
    double cyclesPerIssue() const;

    /** Time to issue @p instructions at clock @p ghz. */
    Tick issueTime(std::uint64_t instructions, double ghz) const;

    /** Custom instructions issued through issueTime() so far. */
    std::uint64_t instructionsIssued() const { return issued_; }

    /** Issue-path time accumulated by issueTime() so far. */
    Tick issueTicks() const { return issue_ticks_; }

    /**
     * Snapshot the cumulative issue totals into @p registry as cp.*
     * gauges labeled {device=@p device} (gauges overwrite, so repeated
     * exports never double-count).
     */
    void exportMetrics(telemetry::MetricRegistry &registry,
                       const std::string &device) const;

  private:
    IsaFeatures features_;
    // Issue-time queries are logically const; the issue totals they
    // feed are observability state.
    mutable std::uint64_t issued_ = 0;
    mutable Tick issue_ticks_ = 0;
};

} // namespace mtia

#endif // MTIA_PE_COMMAND_PROCESSOR_H_
