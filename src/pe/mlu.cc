#include "pe/mlu.h"

#include <cstring>

#include "core/check.h"

namespace mtia {

Tensor
MemoryLayoutUnit::transpose(const Tensor &t)
{
    MTIA_CHECK_EQ(t.shape().rank(), 2u)
        << ": MLU::transpose expects rank 2";
    const std::int64_t m = t.shape().dim(0);
    const std::int64_t n = t.shape().dim(1);
    Tensor out(Shape{n, m}, t.dtype());
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            out.set2(j, i, t.at2(i, j));
    return out;
}

Tensor
MemoryLayoutUnit::permute3(const Tensor &t, const std::array<int, 3> &perm)
{
    MTIA_CHECK_EQ(t.shape().rank(), 3u)
        << ": MLU::permute3 expects rank 3";
    const std::int64_t d0 = t.shape().dim(0);
    const std::int64_t d1 = t.shape().dim(1);
    const std::int64_t d2 = t.shape().dim(2);
    const std::int64_t in_dims[3] = {d0, d1, d2};
    Shape out_shape{in_dims[perm[0]], in_dims[perm[1]], in_dims[perm[2]]};
    Tensor out(out_shape, t.dtype());
    for (std::int64_t i = 0; i < d0; ++i) {
        for (std::int64_t j = 0; j < d1; ++j) {
            for (std::int64_t k = 0; k < d2; ++k) {
                const std::int64_t idx[3] = {i, j, k};
                const std::int64_t oi = idx[perm[0]];
                const std::int64_t oj = idx[perm[1]];
                const std::int64_t ok = idx[perm[2]];
                out.set((oi * out_shape.dim(1) + oj) * out_shape.dim(2) +
                            ok,
                        t.at((i * d1 + j) * d2 + k));
            }
        }
    }
    return out;
}

Tensor
MemoryLayoutUnit::concat(const std::vector<Tensor> &parts, int axis)
{
    MTIA_CHECK(!parts.empty()) << ": MLU::concat with no parts";
    MTIA_CHECK(axis == 0 || axis == 1)
        << ": MLU::concat axis " << axis << " not supported";
    const DType dt = parts[0].dtype();
    std::int64_t rows = parts[0].shape().dim(0);
    std::int64_t cols = parts[0].shape().dim(1);
    for (std::size_t p = 1; p < parts.size(); ++p) {
        if (axis == 0) {
            MTIA_CHECK_EQ(parts[p].shape().dim(1), cols)
                << ": MLU::concat part " << p << " column mismatch";
            rows += parts[p].shape().dim(0);
        } else {
            MTIA_CHECK_EQ(parts[p].shape().dim(0), rows)
                << ": MLU::concat part " << p << " row mismatch";
            cols += parts[p].shape().dim(1);
        }
    }
    Tensor out(Shape{rows, cols}, dt);
    std::int64_t off = 0;
    for (const Tensor &p : parts) {
        const std::int64_t pr = p.shape().dim(0);
        const std::int64_t pc = p.shape().dim(1);
        for (std::int64_t i = 0; i < pr; ++i) {
            for (std::int64_t j = 0; j < pc; ++j) {
                if (axis == 0) {
                    out.set2(off + i, j, p.at2(i, j));
                } else {
                    out.set2(i, off + j, p.at2(i, j));
                }
            }
        }
        off += axis == 0 ? pr : pc;
    }
    return out;
}

Tensor
MemoryLayoutUnit::sliceRows(const Tensor &t, std::int64_t begin,
                            std::int64_t end)
{
    MTIA_CHECK_EQ(t.shape().rank(), 2u)
        << ": MLU::sliceRows expects rank 2";
    MTIA_CHECK_GE(begin, 0) << ": MLU::sliceRows range start";
    MTIA_CHECK_LE(end, t.shape().dim(0)) << ": MLU::sliceRows range end";
    MTIA_CHECK_LE(begin, end) << ": MLU::sliceRows reversed range";
    const std::int64_t cols = t.shape().dim(1);
    Tensor out(Shape{end - begin, cols}, t.dtype());
    for (std::int64_t i = begin; i < end; ++i)
        for (std::int64_t j = 0; j < cols; ++j)
            out.set2(i - begin, j, t.at2(i, j));
    return out;
}

Tensor
MemoryLayoutUnit::reshape(const Tensor &t, Shape new_shape)
{
    MTIA_CHECK_EQ(new_shape.numel(), t.numel())
        << ": MLU::reshape must preserve the element count";
    Tensor out(new_shape, t.dtype());
    out.raw() = t.raw();
    return out;
}

} // namespace mtia
