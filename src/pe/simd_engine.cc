#include "pe/simd_engine.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mtia {

std::string
nonlinearityName(Nonlinearity f)
{
    switch (f) {
      case Nonlinearity::Relu: return "relu";
      case Nonlinearity::Sigmoid: return "sigmoid";
      case Nonlinearity::Tanh: return "tanh";
      case Nonlinearity::Gelu: return "gelu";
      case Nonlinearity::Exp: return "exp";
      case Nonlinearity::Rsqrt: return "rsqrt";
      case Nonlinearity::Silu: return "silu";
    }
    return "?";
}

float
nonlinearityExact(Nonlinearity f, float x)
{
    switch (f) {
      case Nonlinearity::Relu:
        return x > 0.0f ? x : 0.0f;
      case Nonlinearity::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case Nonlinearity::Tanh:
        return std::tanh(x);
      case Nonlinearity::Gelu:
        return 0.5f * x *
            (1.0f + std::erf(x / std::sqrt(2.0f)));
      case Nonlinearity::Exp:
        return std::exp(x);
      case Nonlinearity::Rsqrt:
        return 1.0f / std::sqrt(x);
      case Nonlinearity::Silu:
        return x / (1.0f + std::exp(-x));
    }
    MTIA_UNREACHABLE("nonlinearityExact: unknown function");
}

LookupTable::LookupTable(std::function<float(float)> fn, float lo,
                         float hi, unsigned entries)
    : lo_(lo), hi_(hi)
{
    MTIA_CHECK_GE(entries, 2u)
        << ": LookupTable needs at least two entries";
    MTIA_CHECK_LT(lo, hi) << ": LookupTable range is empty";
    step_ = (hi_ - lo_) / static_cast<float>(entries - 1);
    table_.resize(entries);
    for (unsigned i = 0; i < entries; ++i)
        table_[i] = fn(lo_ + step_ * static_cast<float>(i));
}

float
LookupTable::evaluate(float x) const
{
    if (x <= lo_)
        return table_.front();
    if (x >= hi_)
        return table_.back();
    const float pos = (x - lo_) / step_;
    const auto idx = static_cast<std::size_t>(pos);
    const float frac = pos - static_cast<float>(idx);
    return table_[idx] + frac * (table_[idx + 1] - table_[idx]);
}

SimdEngine::SimdEngine(SimdConfig cfg) : cfg_(cfg)
{
    // One LUT per nonlinearity over a range wide enough that the
    // clamped tails carry negligible mass.
    auto build = [&](Nonlinearity f, float lo, float hi) {
        tables_.emplace_back(
            [f](float x) { return nonlinearityExact(f, x); }, lo, hi,
            cfg_.lut_entries);
    };
    build(Nonlinearity::Relu, -8.0f, 8.0f);
    build(Nonlinearity::Sigmoid, -12.0f, 12.0f);
    build(Nonlinearity::Tanh, -6.0f, 6.0f);
    build(Nonlinearity::Gelu, -8.0f, 8.0f);
    build(Nonlinearity::Exp, -20.0f, 10.0f);
    build(Nonlinearity::Rsqrt, 1e-4f, 16.0f);
    build(Nonlinearity::Silu, -12.0f, 12.0f);
}

const LookupTable &
SimdEngine::tableFor(Nonlinearity f) const
{
    return tables_[static_cast<std::size_t>(f)];
}

Tensor
SimdEngine::apply(Nonlinearity f, const Tensor &x) const
{
    Tensor out(x.shape(), x.dtype());
    const std::int64_t n = x.numel();
    if (f == Nonlinearity::Relu) {
        // ReLU runs on the ALUs, not the LUT: it is exact.
        for (std::int64_t i = 0; i < n; ++i)
            out.set(i, std::max(0.0f, x.at(i)));
        return out;
    }
    if (f == Nonlinearity::Exp) {
        // exp is evaluated on a log-domain LUT for range: the table
        // stores exp over the range and extreme inputs clamp, which
        // the softmax kernel tolerates because inputs are max-shifted.
        const LookupTable &lut = tableFor(f);
        for (std::int64_t i = 0; i < n; ++i)
            out.set(i, lut.evaluate(x.at(i)));
        return out;
    }
    const LookupTable &lut = tableFor(f);
    for (std::int64_t i = 0; i < n; ++i)
        out.set(i, lut.evaluate(x.at(i)));
    return out;
}

float
SimdEngine::applyOne(Nonlinearity f, float x) const
{
    // Must mirror apply() exactly, element for element.
    if (f == Nonlinearity::Relu)
        return std::max(0.0f, x);
    return tableFor(f).evaluate(x);
}

Tensor
SimdEngine::applyExact(Nonlinearity f, const Tensor &x)
{
    Tensor out(x.shape(), x.dtype());
    const std::int64_t n = x.numel();
    for (std::int64_t i = 0; i < n; ++i)
        out.set(i, nonlinearityExact(f, x.at(i)));
    return out;
}

double
SimdEngine::maxLutError(Nonlinearity f, float lo, float hi) const
{
    double max_err = 0.0;
    const int samples = 100000;
    for (int i = 0; i <= samples; ++i) {
        const float x = lo + (hi - lo) * static_cast<float>(i) /
            static_cast<float>(samples);
        const float approx = f == Nonlinearity::Relu
            ? std::max(0.0f, x)
            : tableFor(f).evaluate(x);
        const float exact = nonlinearityExact(f, x);
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(approx) -
                                    static_cast<double>(exact)));
    }
    return max_err;
}

} // namespace mtia
