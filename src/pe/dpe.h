#ifndef MTIA_PE_DPE_H_
#define MTIA_PE_DPE_H_

/**
 * @file
 * Dot Product Engine: the per-PE GEMM unit. Two 32 x 32B x 32
 * multiply-accumulate tiles deliver 2.76 TFLOPS/s per PE for FP16/BF16
 * inputs with FP32 accumulation, plus 2x throughput for INT8 and for
 * 2:4-sparse weights. The first operand is cached inside the engine
 * while the second streams from Local Memory.
 *
 * This class provides both the functional GEMM (real arithmetic with
 * dtype rounding, used by the operator executor and the numerics
 * experiments) and the shape-utilization model used for timing.
 */

#include <cstdint>

#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia {

/** Static DPE parameters (per PE). */
struct DpeConfig
{
    unsigned mac_tiles = 2;        ///< number of 32x32B x 32 MAC tiles
    unsigned tile_rows = 32;       ///< tile M/N extent
    unsigned tile_depth = 32;      ///< tile K extent
    /** MACs each tile retires per cycle; 512 calibrates the per-PE
     * peak to Table 2's 2.76 TFLOPS/s FP16 at 1.35 GHz. */
    unsigned tile_macs_per_cycle = 512;

    /** MACs retired per cycle across all tiles. */
    std::uint64_t
    macsPerCycle() const
    {
        return static_cast<std::uint64_t>(mac_tiles) *
            tile_macs_per_cycle;
    }
};

/** The per-PE GEMM engine. */
class DotProductEngine
{
  public:
    explicit DotProductEngine(DpeConfig cfg = {}) : cfg_(cfg) {}

    const DpeConfig &config() const { return cfg_; }

    /**
     * Functional GEMM: C[M,N] = A[M,K] * B[K,N] with both inputs
     * rounded through @p compute_dtype and FP32 accumulation, exactly
     * as the MAC array computes.
     */
    Tensor gemm(const Tensor &a, const Tensor &b,
                DType compute_dtype = DType::FP16) const;

    /**
     * INT8 GEMM with row-wise dynamically quantized activations and
     * statically quantized weights; INT32 accumulation, FP32
     * dequantized output (the Section 4.4 datapath).
     */
    Tensor gemmInt8(const QuantizedTensor &a,
                    const QuantizedTensor &b) const;

    /**
     * MAC-array utilization for an M x N x K GEMM: dimensions that do
     * not fill whole 32-wide tiles waste lanes.
     */
    double shapeUtilization(std::int64_t m, std::int64_t n,
                            std::int64_t k) const;

    /** FLOPS (2 * MACs/cycle) per second at clock @p ghz, with the
     * INT8 and 2:4-sparsity multipliers applied. */
    double peakFlops(double ghz, DType dtype, bool sparse_24) const;

  private:
    DpeConfig cfg_;
};

} // namespace mtia

#endif // MTIA_PE_DPE_H_
