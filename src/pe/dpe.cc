#include "pe/dpe.h"

#include <cmath>

#include "core/check.h"

namespace mtia {

Tensor
DotProductEngine::gemm(const Tensor &a, const Tensor &b,
                       DType compute_dtype) const
{
    MTIA_CHECK_EQ(a.shape().rank(), 2u) << ": DPE::gemm lhs rank";
    MTIA_CHECK_EQ(b.shape().rank(), 2u) << ": DPE::gemm rhs rank";
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t k2 = b.shape().dim(0);
    const std::int64_t n = b.shape().dim(1);
    MTIA_CHECK_EQ(k, k2) << ": DPE::gemm inner dimensions";

    Tensor c(Shape{m, n}, DType::FP32);
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f; // FP32 accumulator, as in the MAC array
            for (std::int64_t x = 0; x < k; ++x) {
                const float av = roundTrip(a.at2(i, x), compute_dtype);
                const float bv = roundTrip(b.at2(x, j), compute_dtype);
                acc += av * bv;
            }
            c.set2(i, j, acc);
        }
    }
    return c;
}

Tensor
DotProductEngine::gemmInt8(const QuantizedTensor &a,
                           const QuantizedTensor &b) const
{
    const std::int64_t m = a.values.shape().dim(0);
    const std::int64_t k = a.values.shape().dim(1);
    MTIA_CHECK_EQ(b.values.shape().dim(0), k)
        << ": DPE::gemmInt8 inner dimensions";
    const std::int64_t n = b.values.shape().dim(1);

    Tensor c(Shape{m, n}, DType::FP32);
    for (std::int64_t i = 0; i < m; ++i) {
        const float sa = a.scaleFor(i);
        for (std::int64_t j = 0; j < n; ++j) {
            std::int64_t acc = 0; // INT32 accumulation path
            for (std::int64_t x = 0; x < k; ++x) {
                const auto av =
                    static_cast<std::int64_t>(a.values.at2(i, x));
                const auto bv =
                    static_cast<std::int64_t>(b.values.at2(x, j));
                acc += av * bv;
            }
            // Weights are quantized per-tensor (group_rows == rows),
            // so any row's scale is the tensor scale.
            const float sb = b.scales[0];
            c.set2(i, j, static_cast<float>(acc) * sa * sb);
        }
    }
    return c;
}

double
DotProductEngine::shapeUtilization(std::int64_t m, std::int64_t n,
                                   std::int64_t k) const
{
    auto fill = [](std::int64_t d, std::int64_t tile) {
        const std::int64_t padded = (d + tile - 1) / tile * tile;
        return static_cast<double>(d) / static_cast<double>(padded);
    };
    const auto rows = static_cast<std::int64_t>(cfg_.tile_rows);
    const auto depth = static_cast<std::int64_t>(cfg_.tile_depth);
    // M streams through the array (no tile quantization), N and K pad
    // to tile boundaries. Very small M still wastes pipeline ramp.
    const double m_fill =
        m >= rows ? 1.0 : static_cast<double>(m) / static_cast<double>(rows);
    return m_fill * fill(n, rows) * fill(k, depth);
}

double
DotProductEngine::peakFlops(double ghz, DType dtype, bool sparse_24) const
{
    double flops = 2.0 * static_cast<double>(cfg_.macsPerCycle()) *
        ghz * 1e9;
    if (dtype == DType::INT8)
        flops *= 2.0;
    if (sparse_24)
        flops *= 2.0;
    return flops;
}

} // namespace mtia
