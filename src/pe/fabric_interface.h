#ifndef MTIA_PE_FABRIC_INTERFACE_H_
#define MTIA_PE_FABRIC_INTERFACE_H_

/**
 * @file
 * Fabric Interface: the PE's DMA engine into the NoC. Models DMA_IN /
 * DMA_OUT transfer timing between Local Memory and on-chip SRAM or
 * off-chip DRAM, including the prefetch path added in MTIA 2i that
 * stages DRAM data into SRAM ahead of Local Memory loads.
 */

#include <cstdint>

#include "sim/types.h"

namespace mtia {

/** Where a DMA source/destination lives. */
enum class MemSpace : std::uint8_t {
    LocalMemory,
    Sram,   ///< shared on-chip SRAM (LLC or LLS)
    Dram,   ///< off-chip LPDDR
    Host,   ///< host memory over PCIe
};

/** Static FI parameters (per PE). */
struct FabricInterfaceConfig
{
    /** FI-to-NoC bandwidth (doubled vs MTIA 1). */
    BytesPerSec noc_bandwidth = gbPerSec(42.0);
    /** Per-descriptor setup latency. */
    Tick descriptor_latency = fromNanos(40.0);
    /** DMA_IN prefetch support (DRAM -> SRAM staging). */
    bool prefetch = true;
};

/** The per-PE DMA engine. */
class FabricInterface
{
  public:
    explicit FabricInterface(FabricInterfaceConfig cfg = {}) : cfg_(cfg) {}

    const FabricInterfaceConfig &config() const { return cfg_; }

    /**
     * Time for one DMA of @p bytes between Local Memory and @p space,
     * where @p space_bandwidth is the bandwidth the far side grants
     * this PE (the caller derives it from NoC/DRAM sharing).
     */
    Tick transferTime(Bytes bytes, BytesPerSec space_bandwidth) const;

    /**
     * Effective time of a DRAM read with prefetch: when supported,
     * the DRAM->SRAM staging overlaps compute, leaving only the
     * SRAM->LM hop on the critical path. Without it the full DRAM
     * latency serializes.
     */
    Tick dramReadTime(Bytes bytes, BytesPerSec dram_bw,
                      BytesPerSec sram_bw) const;

  private:
    FabricInterfaceConfig cfg_;
};

} // namespace mtia

#endif // MTIA_PE_FABRIC_INTERFACE_H_
