#ifndef MTIA_PE_WORK_QUEUE_ENGINE_H_
#define MTIA_PE_WORK_QUEUE_ENGINE_H_

/**
 * @file
 * Work Queue Engine: the eager-mode job-launch path. MTIA 1 launched
 * jobs by having the (single-core) control processor write per-PE
 * descriptors one at a time; MTIA 2i's quad-core Control Core
 * broadcasts Work Queue descriptors and each PE's WQE DMAs its
 * request, cutting launch time by as much as 80% — under 1 us to
 * launch and under 0.5 us to replace a job (Section 3.3).
 */

#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace mtia {

/** Launch-path configuration. */
struct WorkQueueConfig
{
    bool broadcast = true;        ///< Control Core WQ broadcast support
    bool pe_wqe = true;           ///< per-PE Work Queue Engine DMA
    unsigned control_cores = 4;   ///< Control Core core count
    /** Time to compose and post one WQ descriptor. */
    Tick descriptor_cost = fromNanos(60.0);
    /** Per-PE WQE DMA pull cost (overlapped across PEs). */
    Tick wqe_pull_cost = fromNanos(250.0);

    /** The MTIA 1-era launch path. */
    static WorkQueueConfig
    mtia1()
    {
        WorkQueueConfig cfg;
        cfg.broadcast = false;
        cfg.pe_wqe = false;
        cfg.control_cores = 1;
        return cfg;
    }
};

/** Job-launch timing model. */
class WorkQueueEngine
{
  public:
    explicit WorkQueueEngine(WorkQueueConfig cfg = {}) : cfg_(cfg) {}

    const WorkQueueConfig &config() const { return cfg_; }

    /** Time to launch a fresh job across @p num_pes PEs. */
    Tick launchTime(unsigned num_pes) const;

    /**
     * Time to replace the job on already-armed PEs (descriptors are
     * pre-staged; only the swap broadcast remains).
     */
    Tick replaceTime(unsigned num_pes) const;

    /**
     * Event-driven launch: schedule @p on_launched on @p eq at the
     * moment a fresh job lands on @p num_pes PEs. The callable goes
     * into the queue as-is (no wrapper closure), so move-only,
     * inline-sized completions ride the queue's no-allocation fast
     * path; read eq.now() inside the callback for the completion time.
     * Returns the scheduled completion tick.
     */
    template <typename Fn>
    Tick
    launchAsync(EventQueue &eq, unsigned num_pes, Fn &&on_launched) const
    {
        const Tick done = eq.now() + launchTime(num_pes);
        eq.schedule(done, std::forward<Fn>(on_launched));
        return done;
    }

    /** Event-driven job replacement; see launchAsync. */
    template <typename Fn>
    Tick
    replaceAsync(EventQueue &eq, unsigned num_pes, Fn &&on_replaced) const
    {
        const Tick done = eq.now() + replaceTime(num_pes);
        eq.schedule(done, std::forward<Fn>(on_replaced));
        return done;
    }

  private:
    WorkQueueConfig cfg_;
};

} // namespace mtia

#endif // MTIA_PE_WORK_QUEUE_ENGINE_H_
