#include "pe/fabric_interface.h"

#include <algorithm>

namespace mtia {

Tick
FabricInterface::transferTime(Bytes bytes,
                              BytesPerSec space_bandwidth) const
{
    const BytesPerSec bw =
        std::min(cfg_.noc_bandwidth, space_bandwidth);
    return cfg_.descriptor_latency + transferTicks(bytes, bw);
}

Tick
FabricInterface::dramReadTime(Bytes bytes, BytesPerSec dram_bw,
                              BytesPerSec sram_bw) const
{
    const Tick dram_leg = transferTicks(bytes, dram_bw);
    const Tick sram_leg = transferTime(bytes, sram_bw);
    if (cfg_.prefetch) {
        // Staged pipeline: the slower leg dominates.
        return std::max(dram_leg, sram_leg);
    }
    return dram_leg + sram_leg;
}

} // namespace mtia
