#include "pe/command_processor.h"

#include "core/check.h"
#include "telemetry/metrics.h"

namespace mtia {

CircularBuffer::CircularBuffer(unsigned slots, Bytes slot_bytes)
    : slots_(slots), slot_bytes_(slot_bytes)
{
    MTIA_CHECK_GT(slots_, 0u)
        << ": CircularBuffer needs at least one slot";
}

bool
CircularBuffer::push()
{
    if (full()) {
        ++producer_stalls_;
        return false;
    }
    head_ = (head_ + 1) % slots_;
    ++occupied_;
    return true;
}

bool
CircularBuffer::pop()
{
    if (empty()) {
        ++consumer_stalls_;
        return false;
    }
    tail_ = (tail_ + 1) % slots_;
    --occupied_;
    return true;
}

std::uint64_t
CommandProcessor::gemmInstructions(std::int64_t m, std::int64_t n,
                                   std::int64_t k) const
{
    const auto tiles_n = static_cast<std::uint64_t>((n + 31) / 32);
    const auto tiles_k = static_cast<std::uint64_t>((k + 31) / 32);
    // One matmul issue per (N, K) tile; M streams through the array.
    std::uint64_t per_tile = 1;
    if (!features_.multi_context)
        per_tile += 3; // re-write weight/activation/output contexts
    if (!features_.auto_increment)
        per_tile += 1; // explicit offset-update instruction
    // M larger than the stream window needs re-issues.
    const auto m_chunks =
        static_cast<std::uint64_t>((m + 255) / 256);
    return tiles_n * tiles_k * per_tile * m_chunks;
}

std::uint64_t
CommandProcessor::tbeInstructions(std::uint64_t rows) const
{
    std::uint64_t per_row = 1; // the DMA_IN itself
    if (!features_.indexed_dma)
        per_row += 3; // scalar address computation sequence
    if (!features_.unaligned_dma)
        per_row += 1; // alignment fix-up
    const std::uint64_t accum =
        (rows + features_.accum_rows - 1) / features_.accum_rows;
    return rows * per_row + accum;
}

double
CommandProcessor::cyclesPerIssue() const
{
    // The MTIA 2i issue path retires roughly one custom instruction
    // per two scalar cycles. Without multi-context support, every
    // issue additionally stalls on uncached custom-register writes,
    // roughly doubling the per-instruction cost on top of the extra
    // instructions counted above.
    return features_.multi_context ? 2.0 : 4.0;
}

Tick
CommandProcessor::issueTime(std::uint64_t instructions, double ghz) const
{
    const double cycles =
        static_cast<double>(instructions) * cyclesPerIssue();
    const Tick t = fromSeconds(cycles / (ghz * 1e9));
    issued_ += instructions;
    issue_ticks_ += t;
    return t;
}

void
CommandProcessor::exportMetrics(telemetry::MetricRegistry &registry,
                                const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("cp.instructions_issued", labels)
        .set(static_cast<double>(issued_));
    registry.gauge("cp.issue_ms", labels).set(toMillis(issue_ticks_));
}

} // namespace mtia
