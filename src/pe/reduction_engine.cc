#include "pe/reduction_engine.h"

#include <algorithm>

#include "core/check.h"

namespace mtia {

void
ReductionEngine::accumulate(Tensor &acc, const Tensor &partial)
{
    MTIA_CHECK(acc.shape() == partial.shape())
        << ": ReductionEngine::accumulate shape mismatch "
        << acc.shape().toString() << " vs " << partial.shape().toString();
    const std::int64_t n = acc.numel();
    for (std::int64_t i = 0; i < n; ++i)
        acc.set(i, acc.at(i) + partial.at(i));
}

Tensor
ReductionEngine::reduceAll(const std::vector<Tensor> &partials)
{
    MTIA_CHECK(!partials.empty())
        << ": ReductionEngine::reduceAll with no partials";
    Tensor acc = partials.front();
    for (std::size_t i = 1; i < partials.size(); ++i)
        accumulate(acc, partials[i]);
    return acc;
}

std::vector<RowMinMax>
ReductionEngine::rowMinMax(const Tensor &t)
{
    MTIA_CHECK_EQ(t.shape().rank(), 2u)
        << ": ReductionEngine::rowMinMax expects rank 2";
    const std::int64_t m = t.shape().dim(0);
    const std::int64_t n = t.shape().dim(1);
    std::vector<RowMinMax> out(static_cast<std::size_t>(m));
    for (std::int64_t r = 0; r < m; ++r) {
        RowMinMax mm{t.at2(r, 0), t.at2(r, 0)};
        for (std::int64_t c = 1; c < n; ++c) {
            const float v = t.at2(r, c);
            mm.min = std::min(mm.min, v);
            mm.max = std::max(mm.max, v);
        }
        out[static_cast<std::size_t>(r)] = mm;
    }
    return out;
}

} // namespace mtia
