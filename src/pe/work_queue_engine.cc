#include "pe/work_queue_engine.h"

namespace mtia {

Tick
WorkQueueEngine::launchTime(unsigned num_pes) const
{
    if (cfg_.broadcast && cfg_.pe_wqe) {
        // One broadcast composes the descriptor once; the per-PE WQE
        // pulls proceed in parallel, split across the control cores.
        const Tick broadcast = cfg_.descriptor_cost * 4; // compose+post
        const Tick pulls = cfg_.wqe_pull_cost +
            cfg_.descriptor_cost * (num_pes / 16) / cfg_.control_cores;
        return broadcast + pulls;
    }
    // Sequential descriptor writes, one per PE, on however many
    // control cores exist.
    return cfg_.descriptor_cost * num_pes / cfg_.control_cores +
        cfg_.wqe_pull_cost;
}

Tick
WorkQueueEngine::replaceTime(unsigned num_pes) const
{
    if (cfg_.broadcast && cfg_.pe_wqe) {
        return cfg_.descriptor_cost * 2 +
            cfg_.descriptor_cost * (num_pes / 32) / cfg_.control_cores;
    }
    return launchTime(num_pes);
}

} // namespace mtia
