#ifndef MTIA_GRAPH_GRAPH_COST_H_
#define MTIA_GRAPH_GRAPH_COST_H_

/**
 * @file
 * Model-level timing: schedules the graph, runs the paper's data-
 * placement algorithm (LLS sized to the activation buffer, remainder
 * to LLC, weights cached greedily, TBE hit rates from the Zipf/LRU
 * model), then sums per-op kernel times on the device. This is what
 * turns the kernel cost model into end-to-end model latency, QPS, and
 * utilization — the quantities Figures 4 and 6 plot.
 */

#include <map>
#include <string>
#include <vector>

#include "chip/device.h"
#include "chip/kernel_cost_model.h"
#include "graph/graph.h"
#include "graph/liveness.h"

namespace mtia {

/** Options controlling a model-cost evaluation. */
struct GraphCostOptions
{
    /** Use the memory-aware scheduler (vs naive order). */
    bool memory_aware_schedule = true;
    /** Apply dynamic INT8 to FC layers above this weight size
     * (0 disables quantization entirely). */
    Bytes int8_weight_threshold = 0;
    /** Use 2:4 sparsity on FC weights. */
    bool sparse_24 = false;
    /** Decoupled activation preload + broadcast weight loading (the
     * Section 4.2 kernel optimization); off for un-tuned ports. */
    bool coordinated_loading = true;
    /** Data-placement autotuning (Section 4.1): pin the activation
     * buffer in LLS. Out-of-the-box ports stream activations through
     * LPDDR instead, which is most of their initial inferiority. */
    bool tuned_placement = true;
};

/** Per-model cost report. */
struct ModelCost
{
    Tick latency = 0;             ///< one batch, end to end
    double batch = 0;             ///< batch size used
    double qps = 0;               ///< batch / latency
    Bytes activation_peak = 0;    ///< liveness peak
    Bytes weight_bytes = 0;       ///< total parameters
    bool activations_fit_lls = false;
    unsigned lls_regions = 0;
    double avg_utilization = 0;   ///< flops / (latency * peak flops)
    std::map<std::string, Tick> time_by_kind;
    std::vector<int> order;

    double
    latencyMs() const
    {
        return toMillis(latency);
    }
};

/** Evaluate a graph on a device. */
class GraphCostModel
{
  public:
    explicit GraphCostModel(Device &dev) : dev_(dev), km_(dev) {}

    /**
     * @param batch The model batch size (rows in the graph's dense
     *        part; used for QPS accounting).
     */
    ModelCost evaluate(const Graph &g, double batch,
                       const GraphCostOptions &opt = {});

    /** The per-node cost contexts of the last evaluation. */
    const std::map<int, CostContext> &lastContexts() const
    {
        return contexts_;
    }

  private:
    Device &dev_;
    KernelCostModel km_;
    std::map<int, CostContext> contexts_;
};

} // namespace mtia

#endif // MTIA_GRAPH_GRAPH_COST_H_
