#include "graph/graph.h"

#include <sstream>

#include "core/check.h"

namespace mtia {

int
Graph::add(OpPtr op, std::vector<int> inputs, std::string label)
{
    MTIA_CHECK(op != nullptr) << ": Graph::add null op";
    const int id = static_cast<int>(nodes_.size());
    for (int in : inputs) {
        MTIA_CHECK_GE(in, 0) << ": Graph::add negative input id";
        MTIA_CHECK_LT(in, id)
            << ": Graph::add input must precede node " << id;
    }
    MTIA_CHECK_EQ(inputs.size(), op->arity())
        << ": Graph::add op " << op->kind() << " arity mismatch";
    nodes_.push_back(Node{id, std::move(op), std::move(inputs),
                          std::move(label), false});
    shape_cache_.emplace_back();
    shape_valid_.push_back(false);
    return id;
}

const Node &
Graph::node(int id) const
{
    MTIA_CHECK_GE(id, 0) << ": Graph::node negative id";
    MTIA_CHECK_LT(id, static_cast<int>(nodes_.size()))
        << ": Graph::node id out of range";
    return nodes_[static_cast<std::size_t>(id)];
}

Node &
Graph::node(int id)
{
    return const_cast<Node &>(
        static_cast<const Graph *>(this)->node(id));
}

std::size_t
Graph::liveSize() const
{
    std::size_t n = 0;
    for (const auto &nd : nodes_)
        n += !nd.dead;
    return n;
}

std::vector<int>
Graph::topoOrder() const
{
    std::vector<int> order;
    order.reserve(nodes_.size());
    for (const auto &nd : nodes_) {
        if (!nd.dead)
            order.push_back(nd.id);
    }
    return order;
}

std::vector<int>
Graph::consumers(int id) const
{
    std::vector<int> out;
    for (const auto &nd : nodes_) {
        if (nd.dead)
            continue;
        for (int in : nd.inputs) {
            if (in == id) {
                out.push_back(nd.id);
                break;
            }
        }
    }
    return out;
}

std::vector<int>
Graph::outputs() const
{
    std::vector<int> out;
    for (const auto &nd : nodes_) {
        if (!nd.dead && consumers(nd.id).empty())
            out.push_back(nd.id);
    }
    return out;
}

Shape
Graph::shapeOf(int id) const
{
    const Node &nd = node(id);
    if (shape_valid_[static_cast<std::size_t>(id)])
        return shape_cache_[static_cast<std::size_t>(id)];
    std::vector<Shape> in_shapes;
    in_shapes.reserve(nd.inputs.size());
    for (int in : nd.inputs)
        in_shapes.push_back(shapeOf(in));
    const Shape s = nd.op->outputShape(in_shapes);
    shape_cache_[static_cast<std::size_t>(id)] = s;
    shape_valid_[static_cast<std::size_t>(id)] = true;
    return s;
}

void
Graph::validate() const
{
    for (const auto &nd : nodes_) {
        if (nd.dead)
            continue;
        MTIA_CHECK_EQ(nd.inputs.size(), nd.op->arity())
            << ": Graph::validate node " << nd.id << " ("
            << nd.op->kind() << ") arity mismatch";
        for (int in : nd.inputs) {
            MTIA_CHECK(!node(in).dead)
                << ": Graph::validate node " << nd.id
                << " reads dead node " << in;
        }
        shapeOf(nd.id); // panics on incompatible shapes
    }
}

void
Graph::replaceOp(int id, OpPtr op)
{
    node(id).op = std::move(op);
    // Shapes downstream may change; drop the whole cache.
    std::fill(shape_valid_.begin(), shape_valid_.end(), false);
}

void
Graph::rewireInput(int node_id, std::size_t slot, int new_src)
{
    Node &nd = node(node_id);
    MTIA_CHECK_LT(slot, nd.inputs.size())
        << ": Graph::rewireInput slot out of range";
    nd.inputs[slot] = new_src;
    std::fill(shape_valid_.begin(), shape_valid_.end(), false);
}

void
Graph::markDead(int id)
{
    node(id).dead = true;
}

void
Graph::redirectConsumers(int from, int to)
{
    for (auto &nd : nodes_) {
        if (nd.dead)
            continue;
        for (auto &in : nd.inputs) {
            if (in == from)
                in = to;
        }
    }
    std::fill(shape_valid_.begin(), shape_valid_.end(), false);
}

Bytes
Graph::totalWeightBytes() const
{
    Bytes total = 0;
    for (const auto &nd : nodes_) {
        if (!nd.dead)
            total += nd.op->weightBytes();
    }
    return total;
}

double
Graph::totalFlops() const
{
    double total = 0.0;
    for (const auto &nd : nodes_) {
        if (!nd.dead)
            total += nd.op->flops();
    }
    return total;
}

std::string
Graph::toString() const
{
    std::ostringstream os;
    for (const auto &nd : nodes_) {
        if (nd.dead)
            continue;
        os << "#" << nd.id << " " << nd.op->toString() << " <- [";
        for (std::size_t i = 0; i < nd.inputs.size(); ++i)
            os << (i ? "," : "") << nd.inputs[i];
        os << "]";
        if (!nd.label.empty())
            os << " (" << nd.label << ")";
        os << "\n";
    }
    return os.str();
}

} // namespace mtia
