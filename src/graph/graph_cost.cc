#include "graph/graph_cost.h"

#include <algorithm>

#include "ops/dense_ops.h"
#include "ops/sparse_ops.h"
#include "sim/logging.h"

namespace mtia {

ModelCost
GraphCostModel::evaluate(const Graph &g, double batch,
                         const GraphCostOptions &opt)
{
    g.validate();
    contexts_.clear();

    ModelCost cost;
    cost.batch = batch;
    cost.weight_bytes = g.totalWeightBytes();
    cost.order = opt.memory_aware_schedule ? memoryAwareOrder(g)
                                           : naiveOrder(g);

    // --- Data placement (the Section 4.1 algorithm): size the LLS to
    // the activation buffer; everything else becomes LLC.
    const LivenessReport live = analyzeLiveness(g, cost.order);
    cost.activation_peak = live.peak_bytes;
    SramPartition partition(dev_.config().sram, 0);
    cost.activations_fit_lls = SramPartition::fitLls(
        dev_.config().sram, live.peak_bytes, partition);
    if (!cost.activations_fit_lls) {
        // Activations overflow: leave everything to the LLC.
        partition = SramPartition(dev_.config().sram, 0);
    }
    dev_.setSramPartition(partition);
    cost.lls_regions = partition.llsRegions();
    const Bytes llc_bytes = partition.llcBytes();

    // --- Greedy weight residency: smallest weights first into LLC.
    std::vector<std::pair<Bytes, int>> weighted_nodes;
    for (int id : cost.order) {
        const Bytes w = g.node(id).op->weightBytes();
        if (w > 0 && g.node(id).op->kind() != "tbe" &&
            g.node(id).op->kind() != "sequence-tbe") {
            weighted_nodes.emplace_back(w, id);
        }
    }
    std::sort(weighted_nodes.begin(), weighted_nodes.end());
    std::map<int, Placement> weight_placement;
    // Embedding traffic competes for LLC; reserve a share for it when
    // the model has TBEs.
    bool has_tbe = false;
    for (int id : cost.order) {
        const auto &kind = g.node(id).op->kind();
        has_tbe |= (kind == "tbe" || kind == "sequence-tbe");
    }
    Bytes llc_budget = has_tbe ? llc_bytes / 2 : llc_bytes;
    for (const auto &[w, id] : weighted_nodes) {
        if (cost.activations_fit_lls && w <= llc_budget) {
            weight_placement[id] = Placement::Llc;
            llc_budget -= w;
        } else {
            // Either the weight exceeds the budget or overflowing
            // activations are thrashing the LLC: stream from LPDDR.
            weight_placement[id] = Placement::Dram;
        }
    }

    // --- Per-node contexts and summation. Untuned ports do not pin
    // the activation buffer: it streams through LPDDR even when it
    // would fit (weights still benefit from the hardware LLC).
    const Placement act_place =
        (cost.activations_fit_lls && opt.tuned_placement)
        ? Placement::Lls
        : Placement::Dram;
    Tick total = 0;
    for (int id : cost.order) {
        const Node &nd = g.node(id);
        CostContext ctx;
        ctx.activations = act_place;
        ctx.output = act_place;
        ctx.sparse_24 = opt.sparse_24;
        ctx.coordinated_loading = opt.coordinated_loading;
        auto wp = weight_placement.find(id);
        if (wp != weight_placement.end())
            ctx.weights = wp->second;

        if (const auto *tbe = dynamic_cast<const TbeOp *>(nd.op.get())) {
            ctx.tbe_hit_rate = tbe->expectedHitRate(
                has_tbe ? llc_bytes / 2 : llc_bytes);
        }
        if (opt.int8_weight_threshold > 0) {
            const auto *fc =
                dynamic_cast<const FullyConnectedOp *>(nd.op.get());
            if (fc != nullptr &&
                fc->weightBytes() >= opt.int8_weight_threshold) {
                ctx.dynamic_int8 = true;
            }
        }

        const KernelTime t = nd.op->cost(km_, ctx);
        total += t.total;
        cost.time_by_kind[nd.op->kind()] += t.total;
        contexts_[id] = ctx;
    }

    cost.latency = total;
    cost.qps = total == 0 ? 0.0 : batch / toSeconds(total);
    const double peak = dev_.peakGemmFlops(DType::FP16);
    cost.avg_utilization =
        total == 0 ? 0.0 : g.totalFlops() / (toSeconds(total) * peak);
    return cost;
}

} // namespace mtia
