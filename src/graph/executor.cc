#include "graph/executor.h"

#include <algorithm>

#include "core/check.h"
#include "telemetry/telemetry.h"

namespace mtia {

ExecutionResult
Executor::run(const Graph &g, const std::map<int, Tensor> &bound_inputs)
{
    g.validate();
    const std::vector<int> order = g.topoOrder();
    const std::vector<int> outputs = g.outputs();

    // Remaining-use counts for activation freeing.
    std::map<int, std::size_t> uses;
    for (int id : order)
        uses[id] = g.consumers(id).size();

    OpContext ctx;
    ctx.rng = &rng_;
    ctx.use_lut_simd = use_lut_;

    ExecutionResult result;
    std::map<int, Tensor> live;
    Bytes live_bytes = 0;

    for (int id : order) {
        const Node &nd = g.node(id);
        std::vector<Tensor> ins;
        ins.reserve(nd.inputs.size());
        for (int in : nd.inputs) {
            auto it = live.find(in);
            MTIA_CHECK(it != live.end())
                << ": Executor input " << in << " of node " << id
                << " is not live (bad schedule?)";
            ins.push_back(it->second);
        }

        Tensor out;
        auto bound = bound_inputs.find(id);
        if (bound != bound_inputs.end()) {
            out = bound->second;
        } else {
            out = nd.op->run(ins, ctx);
        }

        if (telemetry_ != nullptr) {
            auto &m = telemetry_->metrics;
            m.counter("executor.nodes", {{"op", nd.op->kind()}}).inc();
            m.counter("executor.output_bytes",
                      {{"op", nd.op->kind()}})
                .inc(out.sizeBytes());
            // Fused regions (fusion.cc rewrites) dispatch to real
            // fused kernels; make that visible in every snapshot.
            if (nd.op->fusedKernel())
                m.counter("executor.fused_kernel_dispatches",
                          {{"op", nd.op->kind()}})
                    .inc();
        }

        live_bytes += out.sizeBytes();
        result.peak_bytes = std::max(result.peak_bytes, live_bytes);
        live.emplace(id, std::move(out));

        // Release inputs whose last consumer just ran.
        for (int in : nd.inputs) {
            if (--uses[in] == 0 &&
                std::find(outputs.begin(), outputs.end(), in) ==
                    outputs.end()) {
                live_bytes -= live[in].sizeBytes();
                live.erase(in);
            }
        }
    }

    for (int id : outputs) {
        auto it = live.find(id);
        if (it != live.end())
            result.outputs.emplace(id, std::move(it->second));
    }

    if (telemetry_ != nullptr) {
        auto &m = telemetry_->metrics;
        m.counter("executor.runs").inc();
        auto &peak = m.gauge("executor.peak_live_bytes");
        peak.set(std::max(peak.value(),
                          static_cast<double>(result.peak_bytes)));
    }
    return result;
}

} // namespace mtia
