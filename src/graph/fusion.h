#ifndef MTIA_GRAPH_FUSION_H_
#define MTIA_GRAPH_FUSION_H_

/**
 * @file
 * Graph-optimization passes. Fusions were the single most effective
 * way to shrink the activation working set on MTIA 2i (Section 4.2);
 * the Section 6 case study additionally batched hundreds of LayerNorm
 * layers horizontally and replaced MHA layout chains with a custom
 * transpose. Each pass mutates the graph in place and returns how
 * many sites it rewrote.
 */

#include "graph/graph.h"

namespace mtia {

/**
 * Vertical fusion: fc -> activation collapses into the FC's fused
 * activation slot (the activation runs on the SIMD engine as results
 * stream out of the reduction engine).
 */
int fuseVerticalFcActivation(Graph &g);

/**
 * Sibling-transpose-FC fusion: transpose feeding >= 2 FC consumers
 * becomes one FusedTransposeFcOp whose output is the concatenation of
 * the branches. Improves cache locality up to 15% on affected models.
 */
int fuseSiblingTransposeFc(Graph &g);

/**
 * Horizontal LayerNorm batching: >= 2 LayerNorm nodes with the same
 * row/col shape merge into one multi-instance LayerNorm, amortizing
 * kernel-launch overhead (the case study batched hundreds).
 */
int batchLayerNormsHorizontally(Graph &g);

/**
 * MHA layout simplification: mark every MhaOp to use the single
 * custom transpose kernel instead of Slice-Reshape-Concat chains.
 */
int simplifyMhaLayouts(Graph &g);

/**
 * Deferred in-batch broadcast: when a broadcast's output feeds ops
 * that are elementwise-safe to reorder (a chain of FCs applied
 * row-wise), push the broadcast below its consumer so the early
 * stages process the un-expanded user rows (Section 6, +17%
 * throughput). Rewrites broadcast -> fc into fc -> broadcast.
 */
int deferInBatchBroadcast(Graph &g);

/** Run every pass to fixpoint; returns total rewrites. */
int optimizeGraph(Graph &g);

} // namespace mtia

#endif // MTIA_GRAPH_FUSION_H_
