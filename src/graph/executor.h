#ifndef MTIA_GRAPH_EXECUTOR_H_
#define MTIA_GRAPH_EXECUTOR_H_

/**
 * @file
 * Functional graph executor: runs every node's real arithmetic in
 * topological order, freeing tensors after their last use (the same
 * activation-buffer-reuse discipline the chip applies). Used by the
 * numerics experiments (quantization quality, error injection, A/B
 * parity) and by the model tests.
 */

#include <map>
#include <vector>

#include "graph/graph.h"

namespace mtia::telemetry {
class Telemetry;
} // namespace mtia::telemetry

namespace mtia {

/** Result of a functional run. */
struct ExecutionResult
{
    /** Output tensors keyed by node id. */
    std::map<int, Tensor> outputs;
    /** Peak live tensor bytes during the run (executor accounting). */
    Bytes peak_bytes = 0;
};

/** Functional executor. */
class Executor
{
  public:
    /**
     * @param seed Seed for input/TBE sampling (reproducible runs).
     * @param use_lut_simd Route nonlinearities through the LUT path.
     */
    explicit Executor(std::uint64_t seed = 7, bool use_lut_simd = true)
        : rng_(seed), use_lut_(use_lut_simd) {}

    /**
     * Run the graph. @p bound_inputs overrides InputOp nodes by id;
     * unbound inputs are filled with Gaussian noise from the rng.
     */
    ExecutionResult run(const Graph &g,
                        const std::map<int, Tensor> &bound_inputs = {});

    /**
     * Attach an observability context (may be null to detach). While
     * attached, run() records per-op-kind node counters, output-byte
     * counters, and a peak-live-bytes gauge. The executor is
     * functional — it has no DES clock — so it feeds metrics only,
     * never trace events.
     */
    void setTelemetry(telemetry::Telemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

  private:
    Rng rng_;
    bool use_lut_;
    telemetry::Telemetry *telemetry_ = nullptr;
};

} // namespace mtia

#endif // MTIA_GRAPH_EXECUTOR_H_
