#ifndef MTIA_GRAPH_LIVENESS_H_
#define MTIA_GRAPH_LIVENESS_H_

/**
 * @file
 * Activation-buffer liveness analysis and memory-aware operator
 * scheduling. The activation buffer's peak size decides whether it
 * pins in LLS — the single most performance-critical placement
 * decision on MTIA 2i (Sections 4.1/4.2) — and the scheduler is
 * chosen to minimize the liveness range of activations.
 */

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mtia {

/** Result of a liveness sweep over one schedule. */
struct LivenessReport
{
    Bytes peak_bytes = 0;          ///< peak live activation bytes
    std::vector<Bytes> profile;    ///< live bytes after each step
    std::vector<int> order;        ///< the schedule analyzed
};

/**
 * Bytes of the on-chip activation produced by a node (FP16 activations
 * as serving runs them; weights are not activations and TBE tables
 * live in DRAM/LLC).
 */
Bytes activationBytes(const Graph &g, int node_id);

/** Analyze liveness of @p order (every input live until its last
 * consumer executes). */
LivenessReport analyzeLiveness(const Graph &g,
                               const std::vector<int> &order);

/** The naive schedule: insertion order. */
std::vector<int> naiveOrder(const Graph &g);

/**
 * Memory-aware list scheduling: repeatedly pick the ready node that
 * minimizes the increase in live bytes (frees count negatively),
 * breaking ties by id. Greedy, deterministic, and in practice close
 * to the liveness-minimizing order for DLRM-shaped DAGs.
 */
std::vector<int> memoryAwareOrder(const Graph &g);

} // namespace mtia

#endif // MTIA_GRAPH_LIVENESS_H_
