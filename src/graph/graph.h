#ifndef MTIA_GRAPH_GRAPH_H_
#define MTIA_GRAPH_GRAPH_H_

/**
 * @file
 * Model graph IR: a DAG of operators. Nodes are appended in
 * topological order (an input must already exist), fusion passes
 * mutate in place (replace ops, rewire edges, kill dead nodes), and
 * shape inference validates the wiring.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ops/op.h"

namespace mtia {

/** One graph node. */
struct Node
{
    int id = -1;
    OpPtr op;
    std::vector<int> inputs;
    std::string label;
    bool dead = false;
};

/** The model DAG. */
class Graph
{
  public:
    /** Append a node; all inputs must already exist. Returns its id. */
    int add(OpPtr op, std::vector<int> inputs = {},
            std::string label = "");

    const Node &node(int id) const;
    Node &node(int id);
    std::size_t size() const { return nodes_.size(); }

    /** Live (non-dead) node count. */
    std::size_t liveSize() const;

    /** Topological order over live nodes (insertion order is one). */
    std::vector<int> topoOrder() const;

    /** Live consumers of @p id. */
    std::vector<int> consumers(int id) const;

    /** Output nodes: live nodes with no live consumers. */
    std::vector<int> outputs() const;

    /** Inferred output shape of a node (cached). */
    Shape shapeOf(int id) const;

    /** Validate arity and shape compatibility of every live node. */
    void validate() const;

    // Mutation (for fusion passes).
    void replaceOp(int id, OpPtr op);
    void rewireInput(int node_id, std::size_t slot, int new_src);
    void markDead(int id);

    /** Redirect every consumer of @p from to read @p to instead. */
    void redirectConsumers(int from, int to);

    // Aggregates.
    Bytes totalWeightBytes() const;
    double totalFlops() const;

    std::string toString() const;

  private:
    std::vector<Node> nodes_;
    mutable std::vector<Shape> shape_cache_;
    mutable std::vector<bool> shape_valid_;
};

} // namespace mtia

#endif // MTIA_GRAPH_GRAPH_H_
