#include "graph/liveness.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/check.h"

namespace mtia {

Bytes
activationBytes(const Graph &g, int node_id)
{
    return static_cast<Bytes>(g.shapeOf(node_id).numel()) * 2; // FP16
}

LivenessReport
analyzeLiveness(const Graph &g, const std::vector<int> &order)
{
    LivenessReport rep;
    rep.order = order;

    // Last use position of each node's output within the order.
    std::map<int, std::size_t> position;
    for (std::size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    std::map<int, std::size_t> last_use;
    for (int id : order) {
        last_use[id] = position[id]; // at least its own step
        for (int in : g.node(id).inputs)
            last_use[in] = std::max(last_use[in], position[id]);
    }

    Bytes live = 0;
    rep.profile.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const int id = order[i];
        live += activationBytes(g, id);
        // The output exists at least transiently even if unread.
        rep.peak_bytes = std::max(rep.peak_bytes, live);
        // Free tensors whose last consumer just ran (including the
        // node's own output if nobody reads it).
        for (int candidate : order) {
            auto it = last_use.find(candidate);
            if (it != last_use.end() && it->second == i &&
                position[candidate] <= i) {
                live -= activationBytes(g, candidate);
                last_use.erase(it);
            }
        }
        rep.profile.push_back(live);
    }
    return rep;
}

std::vector<int>
naiveOrder(const Graph &g)
{
    return g.topoOrder();
}

std::vector<int>
memoryAwareOrder(const Graph &g)
{
    const std::vector<int> all = g.topoOrder();
    std::set<int> remaining(all.begin(), all.end());
    std::map<int, std::size_t> pending_consumers;
    for (int id : all)
        pending_consumers[id] = g.consumers(id).size();

    std::set<int> scheduled;
    std::vector<int> order;
    order.reserve(all.size());

    auto ready = [&](int id) {
        for (int in : g.node(id).inputs) {
            if (!scheduled.count(in))
                return false;
        }
        return true;
    };

    std::map<int, std::size_t> uses_left = pending_consumers;
    while (!remaining.empty()) {
        int best = -1;
        std::int64_t best_delta = 0;
        for (int id : remaining) {
            if (!ready(id))
                continue;
            // Delta live bytes if we schedule id now: its output goes
            // live; any input whose final use this is goes free.
            std::int64_t delta =
                static_cast<std::int64_t>(activationBytes(g, id));
            if (g.consumers(id).empty())
                delta = 0; // output is immediately dead
            for (int in : g.node(id).inputs) {
                if (uses_left[in] == 1) {
                    delta -= static_cast<std::int64_t>(
                        activationBytes(g, in));
                }
            }
            if (best < 0 || delta < best_delta ||
                (delta == best_delta && id < best)) {
                best = id;
                best_delta = delta;
            }
        }
        MTIA_CHECK_GE(best, 0)
            << ": memoryAwareOrder found no ready node (cycle?)";
        order.push_back(best);
        scheduled.insert(best);
        remaining.erase(best);
        for (int in : g.node(best).inputs)
            --uses_left[in];
    }
    return order;
}

} // namespace mtia
