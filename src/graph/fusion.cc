#include "graph/fusion.h"

#include <algorithm>

#include "ops/attention_ops.h"
#include "ops/dense_ops.h"
#include "sim/logging.h"

namespace mtia {

namespace {

/** Downcast helper. */
template <typename T>
T *
as(const Graph &g, int id)
{
    return dynamic_cast<T *>(g.node(id).op.get());
}

} // namespace

int
fuseVerticalFcActivation(Graph &g)
{
    int rewrites = 0;
    for (int id : g.topoOrder()) {
        auto *act = as<ActivationOp>(g, id);
        if (act == nullptr)
            continue;
        const int src = g.node(id).inputs[0];
        auto *fc = as<FullyConnectedOp>(g, src);
        if (fc == nullptr || fc->hasActivation())
            continue;
        // The FC must feed only this activation, or fusing would
        // change what the other consumers see.
        if (g.consumers(src).size() != 1)
            continue;
        fc->fuseActivation(act->fn());
        g.redirectConsumers(id, src);
        g.markDead(id);
        ++rewrites;
    }
    return rewrites;
}

int
fuseSiblingTransposeFc(Graph &g)
{
    int rewrites = 0;
    for (int id : g.topoOrder()) {
        if (g.node(id).op->kind() != "transpose")
            continue;
        const std::vector<int> fcs = g.consumers(id);
        if (fcs.size() < 2)
            continue;
        bool all_fc = true;
        for (int c : fcs) {
            auto *fc = as<FullyConnectedOp>(g, c);
            if (fc == nullptr || fc->hasActivation() ||
                g.node(c).inputs[0] != id) {
                all_fc = false;
                break;
            }
        }
        if (!all_fc)
            continue;
        // Every branch must feed one common concat (axis 1) that
        // consumes exactly these branches, in order.
        const std::vector<int> after = g.consumers(fcs[0]);
        if (after.size() != 1)
            continue;
        const int concat_id = after[0];
        if (g.node(concat_id).op->kind() != "concat")
            continue;
        if (g.node(concat_id).inputs != fcs)
            continue;
        bool clean = true;
        for (int c : fcs) {
            const auto cons = g.consumers(c);
            if (cons.size() != 1 || cons[0] != concat_id) {
                clean = false;
                break;
            }
        }
        if (!clean)
            continue;

        // Build the fused op on the pre-transpose input.
        const int src = g.node(id).inputs[0];
        std::vector<std::int64_t> out_features;
        for (int c : fcs)
            out_features.push_back(as<FullyConnectedOp>(g, c)->shape().n);
        auto fused = std::make_shared<FusedTransposeFcOp>(
            g.shapeOf(src), out_features);
        g.replaceOp(id, fused);
        g.redirectConsumers(concat_id, id);
        for (int c : fcs)
            g.markDead(c);
        g.markDead(concat_id);
        ++rewrites;
    }
    return rewrites;
}

int
batchLayerNormsHorizontally(Graph &g)
{
    int rewrites = 0;
    for (int id : g.topoOrder()) {
        if (g.node(id).op->kind() != "concat")
            continue;
        const std::vector<int> &ins = g.node(id).inputs;
        if (ins.size() < 2)
            continue;
        // All inputs must be single-instance LayerNorms of one shape
        // consumed only by this concat.
        const auto *first = as<LayerNormOp>(g, ins[0]);
        if (first == nullptr || first->instances() != 1)
            continue;
        bool ok = true;
        for (int in : ins) {
            const auto *ln = as<LayerNormOp>(g, in);
            if (ln == nullptr || ln->instances() != 1 ||
                ln->rows() != first->rows() ||
                ln->cols() != first->cols() ||
                g.consumers(in).size() != 1) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        // Replace the concat with one batched LayerNorm reading the
        // LayerNorms' own inputs.
        auto batched = std::make_shared<LayerNormOp>(
            first->rows(), first->cols(),
            static_cast<std::int64_t>(ins.size()));
        const std::vector<int> originals = ins;
        g.replaceOp(id, batched);
        for (std::size_t slot = 0; slot < originals.size(); ++slot) {
            g.rewireInput(id, slot,
                          g.node(originals[slot]).inputs[0]);
        }
        for (int in : originals)
            g.markDead(in);
        ++rewrites;
    }
    return rewrites;
}

int
simplifyMhaLayouts(Graph &g)
{
    int rewrites = 0;
    for (int id : g.topoOrder()) {
        auto *mha = as<MhaOp>(g, id);
        if (mha != nullptr) {
            mha->useCustomTranspose(true);
            ++rewrites;
        }
    }
    return rewrites;
}

int
deferInBatchBroadcast(Graph &g)
{
    int rewrites = 0;
    for (int id : g.topoOrder()) {
        auto *bc = as<BroadcastOp>(g, id);
        if (bc == nullptr)
            continue;
        const std::vector<int> cons = g.consumers(id);
        if (cons.size() != 1)
            continue;
        auto *fc = as<FullyConnectedOp>(g, cons[0]);
        if (fc == nullptr)
            continue;
        // FCs are row-wise: fc(broadcast(x)) == broadcast(fc(x)).
        const int src = g.node(id).inputs[0];
        const Shape src_shape = g.shapeOf(src);
        auto new_fc = std::make_shared<FullyConnectedOp>(
            src_shape.dim(0), fc->shape().k, fc->shape().n,
            fc->dtype(), fc->hasActivation(), fc->activation(),
            fc->weightSeed());
        const int fc_id = g.add(new_fc, {src}, "deferred-ibb-fc");
        auto new_bc = std::make_shared<BroadcastOp>(
            Shape{src_shape.dim(0), fc->shape().n}, bc->factor());
        const int bc_id = g.add(new_bc, {fc_id}, "deferred-ibb");
        g.redirectConsumers(cons[0], bc_id);
        g.markDead(cons[0]);
        g.markDead(id);
        ++rewrites;
    }
    return rewrites;
}

int
optimizeGraph(Graph &g)
{
    int total = 0;
    while (true) {
        int round = 0;
        round += fuseVerticalFcActivation(g);
        round += fuseSiblingTransposeFc(g);
        round += batchLayerNormsHorizontally(g);
        round += deferInBatchBroadcast(g);
        if (round == 0)
            break;
        total += round;
    }
    total += simplifyMhaLayouts(g);
    g.validate();
    return total;
}

} // namespace mtia
