file(REMOVE_RECURSE
  "CMakeFiles/ranking_pipeline.dir/ranking_pipeline.cpp.o"
  "CMakeFiles/ranking_pipeline.dir/ranking_pipeline.cpp.o.d"
  "ranking_pipeline"
  "ranking_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
