# Empty compiler generated dependencies file for ranking_pipeline.
# This may be replaced when dependencies are built.
