file(REMOVE_RECURSE
  "CMakeFiles/codesign_case_study.dir/codesign_case_study.cpp.o"
  "CMakeFiles/codesign_case_study.dir/codesign_case_study.cpp.o.d"
  "codesign_case_study"
  "codesign_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
