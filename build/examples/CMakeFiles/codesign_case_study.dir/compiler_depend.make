# Empty compiler generated dependencies file for codesign_case_study.
# This may be replaced when dependencies are built.
