# Empty dependencies file for firmware_rollout.
# This may be replaced when dependencies are built.
