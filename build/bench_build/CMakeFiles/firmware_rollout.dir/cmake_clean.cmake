file(REMOVE_RECURSE
  "../bench/firmware_rollout"
  "../bench/firmware_rollout.pdb"
  "CMakeFiles/firmware_rollout.dir/firmware_rollout.cc.o"
  "CMakeFiles/firmware_rollout.dir/firmware_rollout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
