# Empty compiler generated dependencies file for fig5_tbe_consolidation.
# This may be replaced when dependencies are built.
