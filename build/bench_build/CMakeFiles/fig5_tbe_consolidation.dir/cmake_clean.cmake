file(REMOVE_RECURSE
  "../bench/fig5_tbe_consolidation"
  "../bench/fig5_tbe_consolidation.pdb"
  "CMakeFiles/fig5_tbe_consolidation.dir/fig5_tbe_consolidation.cc.o"
  "CMakeFiles/fig5_tbe_consolidation.dir/fig5_tbe_consolidation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tbe_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
