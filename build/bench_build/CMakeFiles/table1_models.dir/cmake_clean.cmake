file(REMOVE_RECURSE
  "../bench/table1_models"
  "../bench/table1_models.pdb"
  "CMakeFiles/table1_models.dir/table1_models.cc.o"
  "CMakeFiles/table1_models.dir/table1_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
