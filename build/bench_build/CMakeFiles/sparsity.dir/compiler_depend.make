# Empty compiler generated dependencies file for sparsity.
# This may be replaced when dependencies are built.
