file(REMOVE_RECURSE
  "../bench/fig6_model_sweep"
  "../bench/fig6_model_sweep.pdb"
  "CMakeFiles/fig6_model_sweep.dir/fig6_model_sweep.cc.o"
  "CMakeFiles/fig6_model_sweep.dir/fig6_model_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_model_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
