# Empty compiler generated dependencies file for fig6_model_sweep.
# This may be replaced when dependencies are built.
