file(REMOVE_RECURSE
  "../bench/llm_latency"
  "../bench/llm_latency.pdb"
  "CMakeFiles/llm_latency.dir/llm_latency.cc.o"
  "CMakeFiles/llm_latency.dir/llm_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
