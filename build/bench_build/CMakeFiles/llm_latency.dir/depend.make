# Empty dependencies file for llm_latency.
# This may be replaced when dependencies are built.
