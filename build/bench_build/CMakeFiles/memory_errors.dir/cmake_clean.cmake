file(REMOVE_RECURSE
  "../bench/memory_errors"
  "../bench/memory_errors.pdb"
  "CMakeFiles/memory_errors.dir/memory_errors.cc.o"
  "CMakeFiles/memory_errors.dir/memory_errors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
