# Empty compiler generated dependencies file for memory_errors.
# This may be replaced when dependencies are built.
