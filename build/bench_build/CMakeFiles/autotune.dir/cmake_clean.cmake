file(REMOVE_RECURSE
  "../bench/autotune"
  "../bench/autotune.pdb"
  "CMakeFiles/autotune.dir/autotune.cc.o"
  "CMakeFiles/autotune.dir/autotune.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
