file(REMOVE_RECURSE
  "../bench/locality"
  "../bench/locality.pdb"
  "CMakeFiles/locality.dir/locality.cc.o"
  "CMakeFiles/locality.dir/locality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
