# Empty dependencies file for locality.
# This may be replaced when dependencies are built.
