# Empty compiler generated dependencies file for generational_uplift.
# This may be replaced when dependencies are built.
