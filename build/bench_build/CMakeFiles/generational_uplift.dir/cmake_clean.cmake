file(REMOVE_RECURSE
  "../bench/generational_uplift"
  "../bench/generational_uplift.pdb"
  "CMakeFiles/generational_uplift.dir/generational_uplift.cc.o"
  "CMakeFiles/generational_uplift.dir/generational_uplift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generational_uplift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
