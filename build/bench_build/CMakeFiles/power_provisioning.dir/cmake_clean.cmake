file(REMOVE_RECURSE
  "../bench/power_provisioning"
  "../bench/power_provisioning.pdb"
  "CMakeFiles/power_provisioning.dir/power_provisioning.cc.o"
  "CMakeFiles/power_provisioning.dir/power_provisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
