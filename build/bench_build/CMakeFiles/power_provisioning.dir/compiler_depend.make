# Empty compiler generated dependencies file for power_provisioning.
# This may be replaced when dependencies are built.
