file(REMOVE_RECURSE
  "../bench/quantization"
  "../bench/quantization.pdb"
  "CMakeFiles/quantization.dir/quantization.cc.o"
  "CMakeFiles/quantization.dir/quantization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
