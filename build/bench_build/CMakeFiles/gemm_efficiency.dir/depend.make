# Empty dependencies file for gemm_efficiency.
# This may be replaced when dependencies are built.
