file(REMOVE_RECURSE
  "../bench/gemm_efficiency"
  "../bench/gemm_efficiency.pdb"
  "CMakeFiles/gemm_efficiency.dir/gemm_efficiency.cc.o"
  "CMakeFiles/gemm_efficiency.dir/gemm_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
