file(REMOVE_RECURSE
  "../bench/memory_hierarchy"
  "../bench/memory_hierarchy.pdb"
  "CMakeFiles/memory_hierarchy.dir/memory_hierarchy.cc.o"
  "CMakeFiles/memory_hierarchy.dir/memory_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
