
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_specs.cc" "bench_build/CMakeFiles/table2_specs.dir/table2_specs.cc.o" "gcc" "bench_build/CMakeFiles/table2_specs.dir/table2_specs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mtia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mtia_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtia_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mtia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/mtia_host.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mtia_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
