# Empty compiler generated dependencies file for table2_specs.
# This may be replaced when dependencies are built.
