file(REMOVE_RECURSE
  "../bench/table2_specs"
  "../bench/table2_specs.pdb"
  "CMakeFiles/table2_specs.dir/table2_specs.cc.o"
  "CMakeFiles/table2_specs.dir/table2_specs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
