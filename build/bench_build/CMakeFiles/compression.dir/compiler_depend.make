# Empty compiler generated dependencies file for compression.
# This may be replaced when dependencies are built.
