file(REMOVE_RECURSE
  "../bench/compression"
  "../bench/compression.pdb"
  "CMakeFiles/compression.dir/compression.cc.o"
  "CMakeFiles/compression.dir/compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
