file(REMOVE_RECURSE
  "../bench/fig4_case_study"
  "../bench/fig4_case_study.pdb"
  "CMakeFiles/fig4_case_study.dir/fig4_case_study.cc.o"
  "CMakeFiles/fig4_case_study.dir/fig4_case_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
