# Empty dependencies file for fig4_case_study.
# This may be replaced when dependencies are built.
