file(REMOVE_RECURSE
  "../bench/tbe_instruction_rate"
  "../bench/tbe_instruction_rate.pdb"
  "CMakeFiles/tbe_instruction_rate.dir/tbe_instruction_rate.cc.o"
  "CMakeFiles/tbe_instruction_rate.dir/tbe_instruction_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbe_instruction_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
