# Empty compiler generated dependencies file for tbe_instruction_rate.
# This may be replaced when dependencies are built.
