file(REMOVE_RECURSE
  "../bench/overclocking"
  "../bench/overclocking.pdb"
  "CMakeFiles/overclocking.dir/overclocking.cc.o"
  "CMakeFiles/overclocking.dir/overclocking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overclocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
