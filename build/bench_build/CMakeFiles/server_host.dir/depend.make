# Empty dependencies file for server_host.
# This may be replaced when dependencies are built.
