file(REMOVE_RECURSE
  "../bench/server_host"
  "../bench/server_host.pdb"
  "CMakeFiles/server_host.dir/server_host.cc.o"
  "CMakeFiles/server_host.dir/server_host.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
