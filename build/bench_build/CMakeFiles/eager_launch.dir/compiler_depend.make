# Empty compiler generated dependencies file for eager_launch.
# This may be replaced when dependencies are built.
