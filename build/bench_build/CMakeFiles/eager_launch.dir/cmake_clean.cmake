file(REMOVE_RECURSE
  "../bench/eager_launch"
  "../bench/eager_launch.pdb"
  "CMakeFiles/eager_launch.dir/eager_launch.cc.o"
  "CMakeFiles/eager_launch.dir/eager_launch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
