file(REMOVE_RECURSE
  "../bench/ab_testing"
  "../bench/ab_testing.pdb"
  "CMakeFiles/ab_testing.dir/ab_testing.cc.o"
  "CMakeFiles/ab_testing.dir/ab_testing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
