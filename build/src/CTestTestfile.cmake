# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("tensor")
subdirs("mem")
subdirs("noc")
subdirs("pe")
subdirs("host")
subdirs("core")
subdirs("ops")
subdirs("graph")
subdirs("models")
subdirs("autotune")
subdirs("serving")
subdirs("fleet")
subdirs("baselines")
