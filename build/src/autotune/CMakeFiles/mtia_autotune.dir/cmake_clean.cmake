file(REMOVE_RECURSE
  "CMakeFiles/mtia_autotune.dir/batch_tuner.cc.o"
  "CMakeFiles/mtia_autotune.dir/batch_tuner.cc.o.d"
  "CMakeFiles/mtia_autotune.dir/coalescing_tuner.cc.o"
  "CMakeFiles/mtia_autotune.dir/coalescing_tuner.cc.o.d"
  "CMakeFiles/mtia_autotune.dir/kernel_tuner.cc.o"
  "CMakeFiles/mtia_autotune.dir/kernel_tuner.cc.o.d"
  "CMakeFiles/mtia_autotune.dir/perf_database.cc.o"
  "CMakeFiles/mtia_autotune.dir/perf_database.cc.o.d"
  "CMakeFiles/mtia_autotune.dir/sharding.cc.o"
  "CMakeFiles/mtia_autotune.dir/sharding.cc.o.d"
  "libmtia_autotune.a"
  "libmtia_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
