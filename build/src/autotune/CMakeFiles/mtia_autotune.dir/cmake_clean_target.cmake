file(REMOVE_RECURSE
  "libmtia_autotune.a"
)
