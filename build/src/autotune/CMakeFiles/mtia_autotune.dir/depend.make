# Empty dependencies file for mtia_autotune.
# This may be replaced when dependencies are built.
