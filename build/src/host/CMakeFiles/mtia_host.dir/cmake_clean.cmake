file(REMOVE_RECURSE
  "CMakeFiles/mtia_host.dir/compression.cc.o"
  "CMakeFiles/mtia_host.dir/compression.cc.o.d"
  "CMakeFiles/mtia_host.dir/control_core.cc.o"
  "CMakeFiles/mtia_host.dir/control_core.cc.o.d"
  "CMakeFiles/mtia_host.dir/pcie.cc.o"
  "CMakeFiles/mtia_host.dir/pcie.cc.o.d"
  "CMakeFiles/mtia_host.dir/sha256.cc.o"
  "CMakeFiles/mtia_host.dir/sha256.cc.o.d"
  "libmtia_host.a"
  "libmtia_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
