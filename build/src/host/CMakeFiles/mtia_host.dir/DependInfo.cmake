
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/compression.cc" "src/host/CMakeFiles/mtia_host.dir/compression.cc.o" "gcc" "src/host/CMakeFiles/mtia_host.dir/compression.cc.o.d"
  "/root/repo/src/host/control_core.cc" "src/host/CMakeFiles/mtia_host.dir/control_core.cc.o" "gcc" "src/host/CMakeFiles/mtia_host.dir/control_core.cc.o.d"
  "/root/repo/src/host/pcie.cc" "src/host/CMakeFiles/mtia_host.dir/pcie.cc.o" "gcc" "src/host/CMakeFiles/mtia_host.dir/pcie.cc.o.d"
  "/root/repo/src/host/sha256.cc" "src/host/CMakeFiles/mtia_host.dir/sha256.cc.o" "gcc" "src/host/CMakeFiles/mtia_host.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mtia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mtia_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
