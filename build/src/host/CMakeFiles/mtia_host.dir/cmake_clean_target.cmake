file(REMOVE_RECURSE
  "libmtia_host.a"
)
