# Empty dependencies file for mtia_host.
# This may be replaced when dependencies are built.
