file(REMOVE_RECURSE
  "CMakeFiles/mtia_sim.dir/event_queue.cc.o"
  "CMakeFiles/mtia_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/mtia_sim.dir/logging.cc.o"
  "CMakeFiles/mtia_sim.dir/logging.cc.o.d"
  "CMakeFiles/mtia_sim.dir/random.cc.o"
  "CMakeFiles/mtia_sim.dir/random.cc.o.d"
  "CMakeFiles/mtia_sim.dir/stats.cc.o"
  "CMakeFiles/mtia_sim.dir/stats.cc.o.d"
  "libmtia_sim.a"
  "libmtia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
