file(REMOVE_RECURSE
  "libmtia_sim.a"
)
