# Empty compiler generated dependencies file for mtia_sim.
# This may be replaced when dependencies are built.
