file(REMOVE_RECURSE
  "CMakeFiles/mtia_noc.dir/deadlock.cc.o"
  "CMakeFiles/mtia_noc.dir/deadlock.cc.o.d"
  "CMakeFiles/mtia_noc.dir/noc.cc.o"
  "CMakeFiles/mtia_noc.dir/noc.cc.o.d"
  "CMakeFiles/mtia_noc.dir/traffic_shaper.cc.o"
  "CMakeFiles/mtia_noc.dir/traffic_shaper.cc.o.d"
  "libmtia_noc.a"
  "libmtia_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
