file(REMOVE_RECURSE
  "libmtia_noc.a"
)
