# Empty dependencies file for mtia_noc.
# This may be replaced when dependencies are built.
