file(REMOVE_RECURSE
  "libmtia_tensor.a"
)
