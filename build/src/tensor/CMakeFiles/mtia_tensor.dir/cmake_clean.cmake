file(REMOVE_RECURSE
  "CMakeFiles/mtia_tensor.dir/dtype.cc.o"
  "CMakeFiles/mtia_tensor.dir/dtype.cc.o.d"
  "CMakeFiles/mtia_tensor.dir/jagged.cc.o"
  "CMakeFiles/mtia_tensor.dir/jagged.cc.o.d"
  "CMakeFiles/mtia_tensor.dir/quantize.cc.o"
  "CMakeFiles/mtia_tensor.dir/quantize.cc.o.d"
  "CMakeFiles/mtia_tensor.dir/tensor.cc.o"
  "CMakeFiles/mtia_tensor.dir/tensor.cc.o.d"
  "libmtia_tensor.a"
  "libmtia_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
