# Empty compiler generated dependencies file for mtia_tensor.
# This may be replaced when dependencies are built.
