# Empty compiler generated dependencies file for mtia_baselines.
# This may be replaced when dependencies are built.
