file(REMOVE_RECURSE
  "CMakeFiles/mtia_baselines.dir/comparison.cc.o"
  "CMakeFiles/mtia_baselines.dir/comparison.cc.o.d"
  "CMakeFiles/mtia_baselines.dir/gpu_model.cc.o"
  "CMakeFiles/mtia_baselines.dir/gpu_model.cc.o.d"
  "libmtia_baselines.a"
  "libmtia_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
