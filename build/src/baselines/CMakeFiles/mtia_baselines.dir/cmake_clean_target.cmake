file(REMOVE_RECURSE
  "libmtia_baselines.a"
)
