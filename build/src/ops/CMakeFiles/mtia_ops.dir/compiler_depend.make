# Empty compiler generated dependencies file for mtia_ops.
# This may be replaced when dependencies are built.
