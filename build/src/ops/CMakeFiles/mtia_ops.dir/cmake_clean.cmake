file(REMOVE_RECURSE
  "CMakeFiles/mtia_ops.dir/attention_ops.cc.o"
  "CMakeFiles/mtia_ops.dir/attention_ops.cc.o.d"
  "CMakeFiles/mtia_ops.dir/dense_ops.cc.o"
  "CMakeFiles/mtia_ops.dir/dense_ops.cc.o.d"
  "CMakeFiles/mtia_ops.dir/op.cc.o"
  "CMakeFiles/mtia_ops.dir/op.cc.o.d"
  "CMakeFiles/mtia_ops.dir/sparse_ops.cc.o"
  "CMakeFiles/mtia_ops.dir/sparse_ops.cc.o.d"
  "libmtia_ops.a"
  "libmtia_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
