file(REMOVE_RECURSE
  "libmtia_ops.a"
)
