# Empty compiler generated dependencies file for mtia_serving.
# This may be replaced when dependencies are built.
