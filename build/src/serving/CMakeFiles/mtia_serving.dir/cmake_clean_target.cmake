file(REMOVE_RECURSE
  "libmtia_serving.a"
)
