file(REMOVE_RECURSE
  "CMakeFiles/mtia_serving.dir/ab_testing.cc.o"
  "CMakeFiles/mtia_serving.dir/ab_testing.cc.o.d"
  "CMakeFiles/mtia_serving.dir/coalescer.cc.o"
  "CMakeFiles/mtia_serving.dir/coalescer.cc.o.d"
  "CMakeFiles/mtia_serving.dir/serving_sim.cc.o"
  "CMakeFiles/mtia_serving.dir/serving_sim.cc.o.d"
  "libmtia_serving.a"
  "libmtia_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
