# Empty dependencies file for mtia_fleet.
# This may be replaced when dependencies are built.
