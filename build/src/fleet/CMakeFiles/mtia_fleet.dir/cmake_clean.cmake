file(REMOVE_RECURSE
  "CMakeFiles/mtia_fleet.dir/firmware.cc.o"
  "CMakeFiles/mtia_fleet.dir/firmware.cc.o.d"
  "CMakeFiles/mtia_fleet.dir/memory_error_study.cc.o"
  "CMakeFiles/mtia_fleet.dir/memory_error_study.cc.o.d"
  "CMakeFiles/mtia_fleet.dir/overclocking.cc.o"
  "CMakeFiles/mtia_fleet.dir/overclocking.cc.o.d"
  "CMakeFiles/mtia_fleet.dir/power_provisioning.cc.o"
  "CMakeFiles/mtia_fleet.dir/power_provisioning.cc.o.d"
  "libmtia_fleet.a"
  "libmtia_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
