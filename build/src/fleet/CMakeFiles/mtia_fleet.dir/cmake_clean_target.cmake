file(REMOVE_RECURSE
  "libmtia_fleet.a"
)
