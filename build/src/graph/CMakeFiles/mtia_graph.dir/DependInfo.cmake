
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/executor.cc" "src/graph/CMakeFiles/mtia_graph.dir/executor.cc.o" "gcc" "src/graph/CMakeFiles/mtia_graph.dir/executor.cc.o.d"
  "/root/repo/src/graph/fusion.cc" "src/graph/CMakeFiles/mtia_graph.dir/fusion.cc.o" "gcc" "src/graph/CMakeFiles/mtia_graph.dir/fusion.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/mtia_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/mtia_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_cost.cc" "src/graph/CMakeFiles/mtia_graph.dir/graph_cost.cc.o" "gcc" "src/graph/CMakeFiles/mtia_graph.dir/graph_cost.cc.o.d"
  "/root/repo/src/graph/liveness.cc" "src/graph/CMakeFiles/mtia_graph.dir/liveness.cc.o" "gcc" "src/graph/CMakeFiles/mtia_graph.dir/liveness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/mtia_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/mtia_host.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mtia_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtia_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mtia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mtia_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
