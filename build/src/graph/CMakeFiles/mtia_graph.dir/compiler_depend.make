# Empty compiler generated dependencies file for mtia_graph.
# This may be replaced when dependencies are built.
