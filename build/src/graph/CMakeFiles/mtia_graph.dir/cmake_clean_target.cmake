file(REMOVE_RECURSE
  "libmtia_graph.a"
)
