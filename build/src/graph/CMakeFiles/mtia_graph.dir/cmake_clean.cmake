file(REMOVE_RECURSE
  "CMakeFiles/mtia_graph.dir/executor.cc.o"
  "CMakeFiles/mtia_graph.dir/executor.cc.o.d"
  "CMakeFiles/mtia_graph.dir/fusion.cc.o"
  "CMakeFiles/mtia_graph.dir/fusion.cc.o.d"
  "CMakeFiles/mtia_graph.dir/graph.cc.o"
  "CMakeFiles/mtia_graph.dir/graph.cc.o.d"
  "CMakeFiles/mtia_graph.dir/graph_cost.cc.o"
  "CMakeFiles/mtia_graph.dir/graph_cost.cc.o.d"
  "CMakeFiles/mtia_graph.dir/liveness.cc.o"
  "CMakeFiles/mtia_graph.dir/liveness.cc.o.d"
  "libmtia_graph.a"
  "libmtia_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
