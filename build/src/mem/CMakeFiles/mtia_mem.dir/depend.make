# Empty dependencies file for mtia_mem.
# This may be replaced when dependencies are built.
