file(REMOVE_RECURSE
  "libmtia_mem.a"
)
