
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/ecc.cc" "src/mem/CMakeFiles/mtia_mem.dir/ecc.cc.o" "gcc" "src/mem/CMakeFiles/mtia_mem.dir/ecc.cc.o.d"
  "/root/repo/src/mem/error_injector.cc" "src/mem/CMakeFiles/mtia_mem.dir/error_injector.cc.o" "gcc" "src/mem/CMakeFiles/mtia_mem.dir/error_injector.cc.o.d"
  "/root/repo/src/mem/llc.cc" "src/mem/CMakeFiles/mtia_mem.dir/llc.cc.o" "gcc" "src/mem/CMakeFiles/mtia_mem.dir/llc.cc.o.d"
  "/root/repo/src/mem/lpddr.cc" "src/mem/CMakeFiles/mtia_mem.dir/lpddr.cc.o" "gcc" "src/mem/CMakeFiles/mtia_mem.dir/lpddr.cc.o.d"
  "/root/repo/src/mem/sram.cc" "src/mem/CMakeFiles/mtia_mem.dir/sram.cc.o" "gcc" "src/mem/CMakeFiles/mtia_mem.dir/sram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mtia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mtia_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
