file(REMOVE_RECURSE
  "CMakeFiles/mtia_mem.dir/ecc.cc.o"
  "CMakeFiles/mtia_mem.dir/ecc.cc.o.d"
  "CMakeFiles/mtia_mem.dir/error_injector.cc.o"
  "CMakeFiles/mtia_mem.dir/error_injector.cc.o.d"
  "CMakeFiles/mtia_mem.dir/llc.cc.o"
  "CMakeFiles/mtia_mem.dir/llc.cc.o.d"
  "CMakeFiles/mtia_mem.dir/lpddr.cc.o"
  "CMakeFiles/mtia_mem.dir/lpddr.cc.o.d"
  "CMakeFiles/mtia_mem.dir/sram.cc.o"
  "CMakeFiles/mtia_mem.dir/sram.cc.o.d"
  "libmtia_mem.a"
  "libmtia_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
