# Empty dependencies file for mtia_core.
# This may be replaced when dependencies are built.
