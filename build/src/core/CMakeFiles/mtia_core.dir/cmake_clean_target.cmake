file(REMOVE_RECURSE
  "libmtia_core.a"
)
