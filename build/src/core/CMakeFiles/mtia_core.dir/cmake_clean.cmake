file(REMOVE_RECURSE
  "CMakeFiles/mtia_core.dir/chip_config.cc.o"
  "CMakeFiles/mtia_core.dir/chip_config.cc.o.d"
  "CMakeFiles/mtia_core.dir/device.cc.o"
  "CMakeFiles/mtia_core.dir/device.cc.o.d"
  "CMakeFiles/mtia_core.dir/kernel_cost_model.cc.o"
  "CMakeFiles/mtia_core.dir/kernel_cost_model.cc.o.d"
  "CMakeFiles/mtia_core.dir/tco_model.cc.o"
  "CMakeFiles/mtia_core.dir/tco_model.cc.o.d"
  "libmtia_core.a"
  "libmtia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
