file(REMOVE_RECURSE
  "CMakeFiles/mtia_models.dir/case_study.cc.o"
  "CMakeFiles/mtia_models.dir/case_study.cc.o.d"
  "CMakeFiles/mtia_models.dir/llm.cc.o"
  "CMakeFiles/mtia_models.dir/llm.cc.o.d"
  "CMakeFiles/mtia_models.dir/model_zoo.cc.o"
  "CMakeFiles/mtia_models.dir/model_zoo.cc.o.d"
  "CMakeFiles/mtia_models.dir/workload.cc.o"
  "CMakeFiles/mtia_models.dir/workload.cc.o.d"
  "libmtia_models.a"
  "libmtia_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
