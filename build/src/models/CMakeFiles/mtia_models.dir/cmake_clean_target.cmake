file(REMOVE_RECURSE
  "libmtia_models.a"
)
