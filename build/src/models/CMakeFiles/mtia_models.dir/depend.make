# Empty dependencies file for mtia_models.
# This may be replaced when dependencies are built.
