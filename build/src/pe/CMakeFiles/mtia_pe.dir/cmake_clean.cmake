file(REMOVE_RECURSE
  "CMakeFiles/mtia_pe.dir/command_processor.cc.o"
  "CMakeFiles/mtia_pe.dir/command_processor.cc.o.d"
  "CMakeFiles/mtia_pe.dir/dpe.cc.o"
  "CMakeFiles/mtia_pe.dir/dpe.cc.o.d"
  "CMakeFiles/mtia_pe.dir/fabric_interface.cc.o"
  "CMakeFiles/mtia_pe.dir/fabric_interface.cc.o.d"
  "CMakeFiles/mtia_pe.dir/mlu.cc.o"
  "CMakeFiles/mtia_pe.dir/mlu.cc.o.d"
  "CMakeFiles/mtia_pe.dir/reduction_engine.cc.o"
  "CMakeFiles/mtia_pe.dir/reduction_engine.cc.o.d"
  "CMakeFiles/mtia_pe.dir/simd_engine.cc.o"
  "CMakeFiles/mtia_pe.dir/simd_engine.cc.o.d"
  "CMakeFiles/mtia_pe.dir/work_queue_engine.cc.o"
  "CMakeFiles/mtia_pe.dir/work_queue_engine.cc.o.d"
  "libmtia_pe.a"
  "libmtia_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtia_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
