# Empty compiler generated dependencies file for mtia_pe.
# This may be replaced when dependencies are built.
