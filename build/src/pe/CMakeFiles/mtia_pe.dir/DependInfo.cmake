
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pe/command_processor.cc" "src/pe/CMakeFiles/mtia_pe.dir/command_processor.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/command_processor.cc.o.d"
  "/root/repo/src/pe/dpe.cc" "src/pe/CMakeFiles/mtia_pe.dir/dpe.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/dpe.cc.o.d"
  "/root/repo/src/pe/fabric_interface.cc" "src/pe/CMakeFiles/mtia_pe.dir/fabric_interface.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/fabric_interface.cc.o.d"
  "/root/repo/src/pe/mlu.cc" "src/pe/CMakeFiles/mtia_pe.dir/mlu.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/mlu.cc.o.d"
  "/root/repo/src/pe/reduction_engine.cc" "src/pe/CMakeFiles/mtia_pe.dir/reduction_engine.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/reduction_engine.cc.o.d"
  "/root/repo/src/pe/simd_engine.cc" "src/pe/CMakeFiles/mtia_pe.dir/simd_engine.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/simd_engine.cc.o.d"
  "/root/repo/src/pe/work_queue_engine.cc" "src/pe/CMakeFiles/mtia_pe.dir/work_queue_engine.cc.o" "gcc" "src/pe/CMakeFiles/mtia_pe.dir/work_queue_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mtia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mtia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtia_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mtia_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
