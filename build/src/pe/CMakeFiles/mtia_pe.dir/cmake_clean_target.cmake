file(REMOVE_RECURSE
  "libmtia_pe.a"
)
