# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/autotune_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
