#!/usr/bin/env python3
"""Static linter for simulator-specific invariants.

The simulator's value rests on bit-for-bit reproducibility and on
contracts that fail loudly. This linter rejects the patterns that
silently break those properties:

  wall-clock      std::chrono::system_clock / steady_clock, time(),
                  clock(), gettimeofday() — simulated time must come
                  from the EventQueue, never the host clock.
  unseeded-rng    rand(), srand(), std::random_device, or a
                  default-constructed std::mt19937 — all randomness
                  must flow through an explicitly seeded mtia::Rng.
  raw-output      printf/fprintf(stdout)/std::cout/std::cerr/puts in
                  src/ outside sim/logging — diagnostics must use the
                  logging layer so verbosity is controllable.
  include-guard   headers must carry a classic #ifndef/#define guard
                  (the repo convention; #pragma once is rejected for
                  consistency).
  check-side-effect
                  MTIA_CHECK/MTIA_DCHECK conditions containing ++/--
                  or a bare assignment — MTIA_DCHECK compiles out in
                  release builds, so a mutating condition changes
                  behavior between build types.
  telemetry-wall-clock
                  any time-source include (<chrono>, <ctime>,
                  <time.h>, <sys/time.h>) or std::chrono use inside
                  src/telemetry/ — traces and metric snapshots must be
                  derived from sim ticks only, so identical seeds give
                  byte-identical exports.
  duplicate-include
                  the same header #included more than once in one
                  file — the extra line is dead weight and usually a
                  merge artifact; every repeat after the first is
                  flagged.
  heap-top-copy   `Entry e = heap_.top()`-style copy-before-pop in
                  src/sim/ — priority-queue entries there carry
                  callbacks, so copying the top deep-copies a closure
                  on every dispatch. Bind a const reference or move
                  the parts out before pop().
  scalar-hot-loop a per-element dtype conversion call
                  (fp32ToFp16Bits, fp16BitsToFp32, fp32ToBf16Bits,
                  bf16BitsToFp32) inside a loop, outside the kernel
                  layer (src/tensor/dtype.*) — bulk conversions must
                  go through convertBuffer so they hit the vectorized
                  batch kernels instead of the branchy scalar path
                  once per element.

  raw-intrinsics  a raw SIMD intrinsic call (_mm*, or a NEON-shaped
                  v*_f32/s8/u16/… name) in src/ outside the kernel
                  layer (src/core/simd*) — platform intrinsics must
                  stay behind the core/simd.h wrappers so every
                  dispatch tier has a bit-exact scalar twin and the
                  tree builds on any host.

  bare-allow      a sim-lint suppression comment with nothing after
                  the closing parenthesis — every allow must carry a
                  trailing justification so the reason survives next
                  to the suppression.

Suppress a false positive by appending  // sim-lint: allow(<rule>)
followed by a short justification to the offending line.

The compiled analyzer (tools/mtia-lint) implements these same rules
at token level plus cross-TU checks; scripts/lint_parity.py holds the
two tools to identical findings on tests/lint_fixtures/shared/.

Usage:
  scripts/check_sim_invariants.py [--root DIR] [PATH ...]

With no PATH arguments, lints src/ and bench/ under --root (default:
the repository root containing this script). Exits non-zero if any
violation is found.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
HEADER_SUFFIXES = {".h", ".hpp"}

ALLOW_RE = re.compile(r"//\s*sim-lint:\s*allow\(([a-z-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\("
    r"|(?<![\w:.])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|(?<![\w:.])(?:std::)?clock\s*\(\s*\)"
)

UNSEEDED_RNG_RE = re.compile(
    r"(?<![\w:.])(?:std::)?s?rand\s*\("
    r"|std::random_device"
    r"|std::mt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))"
)

RAW_OUTPUT_RE = re.compile(
    r"(?<![\w:.])printf\s*\("
    r"|(?<![\w:.])fprintf\s*\(\s*stdout"
    r"|std::cout\b|std::cerr\b"
    r"|(?<![\w:.])puts\s*\("
)

TELEMETRY_TIME_RE = re.compile(
    r"#\s*include\s*<(?:chrono|ctime|time\.h|sys/time\.h)>"
    r"|std::chrono\b"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^">]+[">])')

# `= <expr>.top()` / `= <expr>->top()`: a by-value copy of a
# priority-queue top. Reference bindings (`const Entry &e = ...`) are
# recognized by the `&` immediately left of the bound name.
HEAP_TOP_COPY_RE = re.compile(
    r"(?<![=!<>])=\s*[A-Za-z_][\w.\->]*(?:\.|->)top\s*\(\s*\)")
REF_BIND_RE = re.compile(r"&&?\s*[A-Za-z_]\w*\s*$")

# Per-element dtype conversion call; flagged when it sits in obvious
# loop context (a for/while on the same line or within the preceding
# few lines). The window is deliberately small: single-element
# accessors like Tensor::at stay clean, element loops do not.
SCALAR_CONV_RE = re.compile(
    r"\b(fp32ToFp16Bits|fp16BitsToFp32|fp32ToBf16Bits|bf16BitsToFp32)"
    r"\s*\(")
LOOP_OPEN_RE = re.compile(r"\b(?:for|while)\s*\(")
SCALAR_LOOP_WINDOW = 4

# Raw SIMD intrinsic call site: an x86 _mm*/_mm256*/_mm512* name or a
# NEON-shaped v*_<lane-type><bits> name followed by an open paren.
# Member/qualified lookalikes (obj.vld1q_f32, ns::_mm_helper) are
# excluded by the lookbehind, mirroring the other call-site rules.
RAW_INTRINSICS_RE = re.compile(
    r"(?<![\w:.])(?:_mm\w*|v[a-z]\w*_[fsup](?:8|16|32|64))\s*\(")

CHECK_OPEN_RE = re.compile(r"\bMTIA_D?CHECK(?:_(?:EQ|NE|LT|LE|GT|GE))?\s*\(")
# ++/-- anywhere, or an assignment operator that is not a comparison.
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])"
)


def strip_source(text: str) -> list[str]:
    """Blank out comments and string/char-literal contents, whole file.

    Handles what a per-line pass cannot: multi-line /* */ block
    comments, raw string literals R"delim(...)delim" spanning lines,
    and quotes inside comments. Newlines are preserved so the result
    splits back into the original line structure; quote characters
    and raw-string brackets are kept so downstream regexes still see
    "a string was here". This mirrors the token-level view of
    tools/mtia-lint, which is what keeps the two linters in
    agreement.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            out.append("  ")
            i += 2
            while i < n:
                if text[i] == "*" and i + 1 < n and text[i + 1] == "/":
                    out.append("  ")
                    i += 2
                    break
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            continue
        if (c == "R" and i + 1 < n and text[i + 1] == '"'
                and (i == 0
                     or not (text[i - 1].isalnum() or text[i - 1] == "_")
                     or text[i - 1] in "uUL8")):
            open_paren = text.find("(", i + 2)
            # The delimiter is at most 16 chars and contains no
            # whitespace or parens; otherwise this is not a raw
            # string after all.
            if (open_paren != -1 and open_paren - (i + 2) <= 16
                    and "\n" not in text[i + 2:open_paren]
                    and '"' not in text[i + 2:open_paren]):
                delim = text[i + 2:open_paren]
                closer = ")" + delim + '"'
                end = text.find(closer, open_paren + 1)
                if end != -1:
                    out.append('R"' + delim + "(")
                    for ch in text[open_paren + 1:end]:
                        out.append("\n" if ch == "\n" else " ")
                    out.append(closer)
                    i = end + len(closer)
                    continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                ch = text[i]
                if ch == "\\" and i + 1 < n and text[i + 1] != "\n":
                    out.append("  ")
                    i += 2
                    continue
                if ch == quote:
                    out.append(ch)
                    i += 1
                    break
                if ch == "\n":  # unterminated literal: stop at EOL
                    out.append("\n")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out).split("\n")


class Linter:
    def __init__(self) -> None:
        self.violations: list[tuple[pathlib.Path, int, str, str]] = []

    def report(self, path: pathlib.Path, lineno: int, rule: str,
               detail: str, raw_line: str) -> None:
        allow = ALLOW_RE.search(raw_line)
        if allow and allow.group(1) == rule:
            return
        self.violations.append((path, lineno, rule, detail))

    def lint_file(self, path: pathlib.Path, in_src: bool,
                  logging_exempt: bool, telemetry: bool,
                  sim_core: bool, dtype_kernel_layer: bool,
                  simd_kernel_layer: bool) -> None:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            self.violations.append((path, 0, "io-error", str(err)))
            return
        lines = text.splitlines()
        stripped = strip_source(text)

        seen_includes: dict[str, int] = {}
        recent: list[str] = []  # stripped lines, scalar-hot-loop window
        for lineno, raw in enumerate(lines, start=1):
            line = stripped[lineno - 1] if lineno <= len(stripped) else ""

            allow = ALLOW_RE.search(raw)
            if allow and not re.search(r"[A-Za-z0-9]",
                                       raw[allow.end():]):
                self.report(path, lineno, "bare-allow",
                            "sim-lint suppression without a "
                            "justification; append the reason after "
                            "the closing parenthesis", raw)

            if re.match(r"^\s*#\s*include", line):
                m = INCLUDE_RE.match(raw)
                if m:
                    target = m.group(1)
                    first = seen_includes.setdefault(target, lineno)
                    if first != lineno:
                        self.report(path, lineno, "duplicate-include",
                                    f"{target} already included on "
                                    f"line {first}", raw)
            if WALL_CLOCK_RE.search(line):
                self.report(path, lineno, "wall-clock",
                            "host wall-clock time in simulator code; "
                            "use EventQueue ticks", raw)
            if UNSEEDED_RNG_RE.search(line):
                self.report(path, lineno, "unseeded-rng",
                            "unseeded/global randomness; use an "
                            "explicitly seeded mtia::Rng", raw)
            if in_src and not logging_exempt and RAW_OUTPUT_RE.search(line):
                self.report(path, lineno, "raw-output",
                            "direct console output in src/; use "
                            "sim/logging (warn/inform)", raw)
            if telemetry and TELEMETRY_TIME_RE.search(line):
                self.report(path, lineno, "telemetry-wall-clock",
                            "time-source include or std::chrono in "
                            "src/telemetry/; exports must be derived "
                            "from sim ticks only", raw)
            if not dtype_kernel_layer and SCALAR_CONV_RE.search(line):
                window = recent[-SCALAR_LOOP_WINDOW:] + [line]
                if any(LOOP_OPEN_RE.search(l) for l in window):
                    self.report(path, lineno, "scalar-hot-loop",
                                "per-element dtype conversion in a "
                                "loop; use convertBuffer so the batch "
                                "kernels (core/simd.h) run instead",
                                raw)
            if (in_src and not simd_kernel_layer
                    and RAW_INTRINSICS_RE.search(line)):
                self.report(path, lineno, "raw-intrinsics",
                            "raw SIMD intrinsic outside src/core/simd*; "
                            "go through the core/simd.h wrappers so "
                            "every dispatch tier stays bit-exact and "
                            "portable", raw)
            recent.append(line)
            if sim_core:
                m = HEAP_TOP_COPY_RE.search(line)
                if m and not REF_BIND_RE.search(line[:m.start()]):
                    self.report(path, lineno, "heap-top-copy",
                                "copy of a priority-queue top before "
                                "pop; entries carry callbacks, so this "
                                "deep-copies a closure per dispatch — "
                                "bind a const reference or move first",
                                raw)

        if path.suffix in HEADER_SUFFIXES:
            self.lint_include_guard(path, lines)
        self.lint_check_side_effects(path, lines, stripped)

    def lint_include_guard(self, path: pathlib.Path,
                           lines: list[str]) -> None:
        ifndef = None
        define = None
        for lineno, raw in enumerate(lines, start=1):
            stripped = raw.strip()
            if stripped.startswith("#pragma once"):
                self.report(path, lineno, "include-guard",
                            "#pragma once; use an #ifndef guard "
                            "(repo convention)", raw)
                return
            if ifndef is None:
                m = re.match(r"#ifndef\s+(\w+)", stripped)
                if m:
                    ifndef = (lineno, m.group(1))
                continue
            m = re.match(r"#define\s+(\w+)", stripped)
            if m:
                define = (lineno, m.group(1))
            break
        if ifndef is None or define is None:
            self.report(path, 1, "include-guard",
                        "missing #ifndef/#define include guard", "")
            return
        if ifndef[1] != define[1]:
            self.report(path, define[0], "include-guard",
                        f"guard mismatch: #ifndef {ifndef[1]} vs "
                        f"#define {define[1]}", "")

    def lint_check_side_effects(self, path: pathlib.Path,
                                lines: list[str],
                                stripped: list[str]) -> None:
        """Flag ++/--/assignment inside a MTIA_CHECK condition.

        Only the argument list of the macro is scanned (not the
        streamed message after the closing parenthesis).
        """
        text = "\n".join(stripped)
        for m in CHECK_OPEN_RE.finditer(text):
            depth = 1
            i = m.end()
            while i < len(text) and depth > 0:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            args = text[m.end():i - 1]
            if SIDE_EFFECT_RE.search(args):
                lineno = text.count("\n", 0, m.start()) + 1
                raw = lines[lineno - 1] if lineno <= len(lines) else ""
                self.report(path, lineno, "check-side-effect",
                            "side effect inside a check condition; "
                            "MTIA_DCHECK conditions vanish in release "
                            "builds", raw)


def collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_file():
            if p.suffix in SOURCE_SUFFIXES:
                files.append(p)
        elif p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent
                        .parent,
                        help="repository root (default: script's repo)")
    parser.add_argument("--treat-as-src", action="store_true",
                        help="apply src/-only rules (raw-output) to "
                             "every linted file; used by the fixture "
                             "self-test")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to lint "
                             "(default: src/ and bench/ under --root)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    targets = ([p.resolve() for p in args.paths] if args.paths
               else [root / "src", root / "bench"])

    linter = Linter()
    nfiles = 0
    for f in collect_files(targets):
        nfiles += 1
        try:
            rel = f.relative_to(root)
        except ValueError:
            rel = f
        rel_posix = rel.as_posix()
        in_src = rel_posix.startswith("src/") or args.treat_as_src
        logging_exempt = rel_posix.startswith("src/sim/logging")
        telemetry = (rel_posix.startswith("src/telemetry/")
                     or args.treat_as_src)
        sim_core = (rel_posix.startswith("src/sim/")
                    or args.treat_as_src)
        dtype_kernel_layer = rel_posix.startswith("src/tensor/dtype.")
        simd_kernel_layer = rel_posix.startswith("src/core/simd")
        linter.lint_file(f, in_src, logging_exempt, telemetry, sim_core,
                         dtype_kernel_layer, simd_kernel_layer)

    for path, lineno, rule, detail in linter.violations:
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        print(f"{shown}:{lineno}: [{rule}] {detail}")
    n = len(linter.violations)
    if n:
        print(f"\n{n} violation(s) in {nfiles} file(s)")
        return 1
    print(f"ok: {nfiles} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
