#!/usr/bin/env python3
"""Byte-identity gate for bench reports across MTIA_THREADS counts.

Runs a bench binary several times — once per requested lane count,
plus a same-lane repeat — each into a fresh temporary report dir, then
compares the emitted BENCH_<name>.json files after stripping the two
fields that are wall-clock by nature and documented as excluded from
byte-identical guarantees (wall_clock_speedup, wall_clock_ratios).
Any other difference is a determinism regression and fails hard.

Usage:
  check_bench_determinism.py --bench <binary> --name <bench-name> \
      [--lanes 1,8]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

STRIP_KEYS = ("wall_clock_speedup", "wall_clock_ratios")


def run_bench(bench, name, lanes, workdir):
    env = dict(os.environ)
    env["MTIA_THREADS"] = str(lanes)
    env["MTIA_BENCH_REPORT_DIR"] = workdir
    try:
        proc = subprocess.run(
            [bench],
            env=env,
            cwd=workdir,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
    except (FileNotFoundError, NotADirectoryError, PermissionError) as e:
        # A missing/unbuilt bench binary is an input error, not a
        # determinism verdict: fail with a clear message, no traceback.
        raise SystemExit(
            f"FAIL: cannot run bench binary {bench!r}: {e}. "
            "Build the bench target first (it is an input to this "
            "check, not produced by it)."
        )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        raise SystemExit(
            f"FAIL: {bench} exited {proc.returncode} at "
            f"MTIA_THREADS={lanes}"
        )
    report = os.path.join(workdir, f"BENCH_{name}.json")
    if not os.path.exists(report):
        raise SystemExit(f"FAIL: {bench} did not write {report}")
    with open(report, encoding="utf-8") as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            raise SystemExit(
                f"FAIL: {report} is not valid JSON ({e}); the bench "
                "emitted a corrupt report"
            )
    for key in STRIP_KEYS:
        data.pop(key, None)
    # Canonical form: the comparison is on simulated content only.
    return json.dumps(data, sort_keys=True, indent=1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, help="bench binary path")
    ap.add_argument("--name", required=True, help="bench report name")
    ap.add_argument(
        "--lanes",
        default="1,8",
        help="comma-separated MTIA_THREADS values (default 1,8)",
    )
    args = ap.parse_args()

    lane_list = [int(x) for x in args.lanes.split(",") if x]
    # Repeat the widest lane count: same seed, same process env must
    # reproduce byte-identically run over run, not just across lanes.
    runs = [(lanes, f"lanes{lanes}") for lanes in lane_list]
    runs.append((lane_list[-1], f"lanes{lane_list[-1]}-again"))

    results = []
    with tempfile.TemporaryDirectory() as tmp:
        for lanes, tag in runs:
            workdir = os.path.join(tmp, tag)
            os.mkdir(workdir)
            results.append(
                (tag, run_bench(args.bench, args.name, lanes, workdir))
            )

    base_tag, base = results[0]
    for tag, content in results[1:]:
        if content != base:
            for i, (a, b) in enumerate(
                zip(base.splitlines(), content.splitlines())
            ):
                if a != b:
                    sys.stderr.write(
                        f"first differing line {i}:\n"
                        f"  {base_tag}: {a}\n  {tag}: {b}\n"
                    )
                    break
            raise SystemExit(
                f"FAIL: BENCH_{args.name}.json differs between "
                f"{base_tag} and {tag} (after stripping "
                f"{', '.join(STRIP_KEYS)})"
            )
    print(
        f"OK: BENCH_{args.name}.json byte-identical across "
        + ", ".join(tag for _, tag in runs)
    )


if __name__ == "__main__":
    main()
