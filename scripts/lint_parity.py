#!/usr/bin/env python3
"""Parity test: mtia-lint and check_sim_invariants.py must agree.

Both linters run over tests/lint_fixtures/shared/ (the fixtures for
the rules both tools implement) with --treat-as-src, and their
findings are normalized to (relative path, line, rule) triples. The
two sets must be identical. Disagreement means one tool's port of a
rule drifted — the fixture corpus is the contract between them.

On top of the cross-tool diff, every fixture file carries its
expectation in its name:

  <rule>_bad.*   at least one finding of <rule> (dashes for
                 underscores) must be reported in that file
  <rule>_ok.*    the file must be completely clean in both tools

tests/lint_fixtures/mtia_only/ holds fixtures for the token-level
rules only mtia-lint implements (unordered-iteration,
pointer-key-ordered, parallel-capture); those are checked against
mtia-lint alone, and the Python linter is additionally required to
find nothing there (the rules do not exist on its side, and the
fixtures must not trip any shared rule by accident).

Usage:
  lint_parity.py --mtia-lint /path/to/mtia-lint [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([a-z-]+)\] ")

# Rules implemented by BOTH tools; the parity diff is restricted to
# these (mtia-lint's graph/token-only rules have no Python
# counterpart by design).
SHARED_RULES = {
    "wall-clock",
    "unseeded-rng",
    "raw-output",
    "include-guard",
    "check-side-effect",
    "telemetry-wall-clock",
    "duplicate-include",
    "heap-top-copy",
    "scalar-hot-loop",
    "raw-intrinsics",
    "bare-allow",
}

# Legacy aggregate fixtures that predate the per-rule naming scheme.
AGGREGATE_EXPECTATIONS = {
    "bad_example.cc": None,  # any finding qualifies
    "bad_header.h": "include-guard",
    "scalar_hot_loop.cc": "scalar-hot-loop",
}


def run_linter(cmd: list[str], root: pathlib.Path) -> set[tuple]:
    """Run a linter, returning {(relpath, line, rule)}.

    Exit status 1 (violations found) is expected; anything else
    beyond 0/1 is a crash and fails the parity test.
    """
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        sys.stderr.write(f"command crashed ({proc.returncode}): "
                         f"{' '.join(cmd)}\n{proc.stdout}{proc.stderr}")
        sys.exit(2)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = pathlib.Path(m.group(1))
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        findings.add((rel.as_posix(), int(m.group(2)), m.group(3)))
    return findings


def expected_rule(name: str) -> tuple[str, str] | None:
    """Map fixture file name -> ('bad'|'ok', rule) or None."""
    stem = pathlib.Path(name).stem
    for kind in ("bad", "ok"):
        suffix = f"_{kind}"
        if stem.endswith(suffix):
            return kind, stem[: -len(suffix)].replace("_", "-")
    return None


def check_expectations(tool: str, findings: set[tuple],
                       fixture_dir: pathlib.Path,
                       root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    for f in sorted(fixture_dir.iterdir()):
        if f.suffix not in {".h", ".hpp", ".cc", ".cpp", ".cxx"}:
            continue
        rel = f.relative_to(root).as_posix()
        mine = {(p, l, r) for (p, l, r) in findings if p == rel}
        if f.name in AGGREGATE_EXPECTATIONS:
            want = AGGREGATE_EXPECTATIONS[f.name]
            if not mine:
                errors.append(f"{tool}: {rel}: expected findings, "
                              f"got none")
            elif want and not any(r == want for (_, _, r) in mine):
                errors.append(f"{tool}: {rel}: expected a [{want}] "
                              f"finding, got {sorted(mine)}")
            continue
        exp = expected_rule(f.name)
        if exp is None:
            errors.append(f"{tool}: {rel}: fixture name must end in "
                          f"_bad or _ok")
            continue
        kind, rule = exp
        # A variant suffix narrows the scenario, not the rule:
        # include_guard_mismatch_bad.h still expects [include-guard].
        matches = {r for (_, _, r) in mine
                   if rule == r or rule.startswith(r + "-")}
        if kind == "ok" and mine:
            errors.append(f"{tool}: {rel}: negative fixture must be "
                          f"clean, got {sorted(mine)}")
        elif kind == "bad" and not matches:
            errors.append(f"{tool}: {rel}: expected a [{rule}] "
                          f"finding, got {sorted(mine)}")
    return errors


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mtia-lint", required=True,
                        type=pathlib.Path)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent
                        .parent)
    args = parser.parse_args(argv)

    root = args.root.resolve()
    shared = root / "tests" / "lint_fixtures" / "shared"
    mtia_only = root / "tests" / "lint_fixtures" / "mtia_only"
    py_linter = root / "scripts" / "check_sim_invariants.py"

    py = run_linter([sys.executable, str(py_linter), "--root",
                     str(root), "--treat-as-src", str(shared)], root)
    cxx = run_linter([str(args.mtia_lint), "--root", str(root),
                      "--treat-as-src", "--no-graph", str(shared)],
                     root)

    errors: list[str] = []

    py_shared = {t for t in py if t[2] in SHARED_RULES}
    cxx_shared = {t for t in cxx if t[2] in SHARED_RULES}
    for t in sorted(py_shared - cxx_shared):
        errors.append(f"python-only finding: {t[0]}:{t[1]} [{t[2]}]")
    for t in sorted(cxx_shared - py_shared):
        errors.append(f"mtia-lint-only finding: {t[0]}:{t[1]} [{t[2]}]")

    errors += check_expectations("python", py, shared, root)
    errors += check_expectations("mtia-lint", cxx, shared, root)

    # mtia-only rules: checked against mtia-lint; the Python linter
    # must see nothing at all in that directory.
    py_mo = run_linter([sys.executable, str(py_linter), "--root",
                        str(root), "--treat-as-src", str(mtia_only)],
                       root)
    cxx_mo = run_linter([str(args.mtia_lint), "--root", str(root),
                         "--treat-as-src", "--no-graph",
                         str(mtia_only)], root)
    for t in sorted(py_mo):
        errors.append(f"python finding in mtia_only fixture (these "
                      f"must not trip shared rules): "
                      f"{t[0]}:{t[1]} [{t[2]}]")
    errors += check_expectations("mtia-lint", cxx_mo, mtia_only, root)

    if errors:
        for e in errors:
            print(e)
        print(f"\nlint parity FAILED: {len(errors)} error(s)")
        return 1
    print(f"lint parity ok: {len(py_shared)} shared finding(s) agree; "
          f"{len(cxx_mo)} mtia-only finding(s) match expectations")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
