/**
 * @file
 * Walk through the Section 6 co-design playbook on the case-study
 * model: measure, apply one optimization at a time, and watch where
 * the time goes — including the model change that was rejected for
 * blowing the activation buffer out of SRAM.
 */

#include <cstdio>

#include "chip/device.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/case_study.h"

using namespace mtia;

namespace {

ModelCost
measure(Device &dev, const ModelInfo &model, const GraphCostOptions &opt)
{
    GraphCostModel gcm(dev);
    return gcm.evaluate(model.graph, model.batch, opt);
}

void
report(const char *label, const ModelCost &cost, const ModelCost &base)
{
    std::printf("  %-44s %8.2f ms  %8.0f QPS  (%+5.1f%%)\n", label,
                cost.latencyMs(), cost.qps,
                (cost.qps / base.qps - 1.0) * 100.0);
}

} // namespace

int
main()
{
    std::printf("Co-designing the case-study model (Section 6)\n");
    std::printf("=============================================\n\n");

    Device dev(ChipConfig::mtia2i());
    dev.setFrequencyGhz(1.1); // pre-overclocking production clock

    // Month-6 model, exactly as the ML engineers handed it over.
    ModelInfo model = buildCaseStudyModel(6);
    std::printf("model: %.0f MFLOPS/sample, %.1f GB embeddings, "
                "%zu ops\n\n",
                model.mflopsPerSample(),
                static_cast<double>(model.embedding_bytes) / (1 << 30),
                model.graph.liveSize());

    GraphCostOptions untuned;
    untuned.memory_aware_schedule = false;
    untuned.coordinated_loading = false;
    untuned.tuned_placement = false;
    const ModelCost base = measure(dev, model, untuned);
    report("out-of-the-box port", base, base);

    GraphCostOptions opt = untuned;
    opt.tuned_placement = true;
    opt.coordinated_loading = true;
    report("+ placement + kernel variants", measure(dev, model, opt),
           base);

    const int fusions = fuseVerticalFcActivation(model.graph) +
        fuseSiblingTransposeFc(model.graph) +
        batchLayerNormsHorizontally(model.graph) +
        simplifyMhaLayouts(model.graph);
    std::printf("  (applied %d fusion rewrites)\n", fusions);
    report("+ graph fusions", measure(dev, model, opt), base);

    opt.memory_aware_schedule = true;
    report("+ memory-aware scheduling", measure(dev, model, opt),
           base);

    deferInBatchBroadcast(model.graph);
    report("+ deferred in-batch broadcast", measure(dev, model, opt),
           base);

    dev.setFrequencyGhz(1.35);
    const ModelCost final_cost = measure(dev, model, opt);
    report("+ 1.35 GHz uplift", final_cost, base);

    // The model change the team rejected, and the SRAM-friendly
    // alternative they shipped instead.
    std::printf("\nEvaluating a proposed model change (3x remote "
                "embedding inputs):\n");
    ModelInfo rejected = buildCaseStudyRejectedChange();
    optimizeGraph(rejected.graph);
    const ModelCost rej = measure(dev, rejected, opt);
    std::printf("  activation peak %.0f MB -> %s; throughput %.0f QPS "
                "(%.0f%% of shipped model)\n",
                static_cast<double>(rej.activation_peak) / (1 << 20),
                rej.activations_fit_lls ? "fits LLS"
                                        : "SPILLS to LPDDR",
                rej.qps, 100.0 * rej.qps / final_cost.qps);

    ModelInfo alt = buildCaseStudyAlternative();
    optimizeGraph(alt.graph);
    const ModelCost altc = measure(dev, alt, opt);
    std::printf("  alternative (+2 DHEN layers): activations %s; "
                "throughput %.0f QPS (%.0f%%)\n",
                altc.activations_fit_lls ? "stay pinned" : "spill",
                altc.qps, 100.0 * altc.qps / final_cost.qps);
    std::printf("\nverdict: reject the 3x-inputs change, ship the "
                "DHEN-deepening alternative.\n");
    return 0;
}
