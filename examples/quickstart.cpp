/**
 * @file
 * Quickstart: build a small DLRM-style ranking model, run it
 * functionally (real arithmetic through the simulated PE units), then
 * time it on a simulated MTIA 2i device and print the performance
 * report. This is the five-minute tour of the public API.
 */

#include <cstdio>

#include "chip/device.h"
#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/model_zoo.h"

using namespace mtia;

int
main()
{
    std::printf("mtia2i-sim quickstart\n");
    std::printf("=====================\n\n");

    // 1. Describe a small ranking model (embeddings + MLPs + one
    //    DHEN interaction layer).
    RankingModelParams params;
    params.name = "quickstart-ranker";
    params.batch = 64;
    params.dense_features = 32;
    params.bottom_mlp = {32, 16};
    params.tbe = TbeTableSpec{.tables = 4,
                              .rows_per_table = 4096,
                              .dim = 16,
                              .dtype = DType::FP16,
                              .zipf_alpha = 0.9};
    params.tbe_pooling = 8;
    params.top_mlp = {64, 1};
    params.dhen_layers = 1;
    params.dhen_width = 64;
    ModelInfo model = buildRankingModel(params);
    std::printf("built '%s': %zu ops, %.2f MFLOPS/sample, %.1f MB "
                "embeddings\n",
                model.name.c_str(), model.graph.liveSize(),
                model.mflopsPerSample(),
                static_cast<double>(model.embedding_bytes) / (1 << 20));

    // 2. Optimize the graph the way the MTIA toolchain would.
    const int rewrites = optimizeGraph(model.graph);
    std::printf("graph optimizer applied %d rewrites (%zu ops "
                "remain)\n\n",
                rewrites, model.graph.liveSize());

    // 3. Run it functionally: real GEMMs, LUT nonlinearities, Zipf
    //    embedding lookups.
    Executor executor(/*seed=*/42);
    const ExecutionResult result = executor.run(model.graph);
    for (const auto &[id, tensor] : result.outputs) {
        std::printf("output node #%d: shape %s, first prediction "
                    "%.4f\n",
                    id, tensor.shape().toString().c_str(),
                    tensor.at(0));
    }
    std::printf("peak functional activation bytes: %.1f KB\n\n",
                static_cast<double>(result.peak_bytes) / 1024.0);

    // 4. Time one batch on a simulated MTIA 2i.
    Device dev(ChipConfig::mtia2i());
    GraphCostModel gcm(dev);
    const ModelCost cost = gcm.evaluate(model.graph, params.batch);
    std::printf("on %s @ %.2f GHz:\n", dev.config().name.c_str(),
                dev.frequencyGhz());
    std::printf("  batch latency:      %.3f ms\n", cost.latencyMs());
    std::printf("  throughput:         %.0f samples/s\n", cost.qps);
    std::printf("  SRAM partition:     %s\n",
                dev.sramPartition().toString().c_str());
    std::printf("  activations pinned: %s\n",
                cost.activations_fit_lls ? "yes (LLS)" : "no (spill)");
    std::printf("  time by op kind:\n");
    for (const auto &[kind, ticks] : cost.time_by_kind)
        std::printf("    %-22s %8.1f us\n", kind.c_str(),
                    toMicros(ticks));
    return 0;
}
