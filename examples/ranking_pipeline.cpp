/**
 * @file
 * The recommendation funnel of Table 1 end to end: retrieval ->
 * early-stage ranking -> late-stage ranking, each stage evaluated on
 * MTIA 2i with sharding decisions, then served under synthetic
 * traffic with request coalescing.
 */

#include <cstdio>

#include "autotune/coalescing_tuner.h"
#include "autotune/sharding.h"
#include "chip/device.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/model_zoo.h"
#include "models/workload.h"

using namespace mtia;

int
main()
{
    std::printf("Recommendation funnel on MTIA 2i\n");
    std::printf("================================\n\n");

    Device dev(ChipConfig::mtia2i());
    ShardingPlanner planner(dev.config());

    ModelInfo stages[] = {buildRetrievalModel(),
                          buildEarlyStageModel(),
                          buildLateStageModel()};

    std::printf("%-14s %10s %9s %12s %8s %9s\n", "stage",
                "MF/sample", "batch", "latency", "shards",
                "fits LLS");
    for (ModelInfo &stage : stages) {
        optimizeGraph(stage.graph);
        GraphCostModel gcm(dev);
        const ModelCost cost =
            gcm.evaluate(stage.graph, stage.batch);
        const unsigned shards =
            planner.shardsNeeded(stage.embedding_bytes, 8_GiB);
        std::printf("%-14s %10.2f %9lld %9.2f ms %8u %9s\n",
                    stage.name.c_str(), stage.mflopsPerSample(),
                    static_cast<long long>(stage.batch),
                    cost.latencyMs(), shards,
                    cost.activations_fit_lls ? "yes" : "no");
    }

    // Serve the late-stage model under bursty production traffic.
    std::printf("\nServing the late-stage model (bursty traffic, "
                "P99 SLO %.0f ms):\n",
                toMillis(stages[2].latency_slo));
    Rng rng(17);
    TrafficParams traffic;
    traffic.qps = 3000.0;
    traffic.duration = fromSeconds(5.0);
    traffic.candidates_mean = 64;
    traffic.burst_fraction = 0.1;
    const auto trace = generateTrace(rng, traffic);
    std::printf("  generated %zu requests, peak/avg load %.2f\n",
                trace.size(),
                peakToAverage(trace, fromMillis(10.0)));

    CoalescingTuner tuner(fromMillis(10.0));
    const auto tuned = tuner.sweep(
        trace, stages[2].batch,
        {fromMillis(1.0), fromMillis(4.0), fromMillis(16.0)}, {1, 2, 4});
    const auto &best = tuned.front();
    std::printf("  tuned coalescing: window %.1f ms x %u parallel -> "
                "%.1f%% batch fill, %.1f requests/batch\n",
                toMillis(best.config.window),
                best.config.parallel_windows,
                best.stats.mean_fill * 100.0,
                best.stats.mean_requests_per_batch);

    // NUMA-aware placement of all three stages on one server.
    std::printf("\nPlacing the funnel on one 24-chip server:\n");
    std::vector<bool> occupied(24, false);
    for (ModelInfo &stage : stages) {
        const ShardingPlan plan =
            planner.plan(stage.embedding_bytes, 8_GiB, occupied);
        std::printf("  %-14s -> chips [", stage.name.c_str());
        for (std::size_t i = 0; i < plan.chips.size(); ++i) {
            std::printf("%s%u", i ? ", " : "", plan.chips[i]);
            occupied[plan.chips[i]] = true;
        }
        std::printf("]\n");
    }
    return 0;
}
