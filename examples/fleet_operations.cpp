/**
 * @file
 * A day in fleet operations (Section 5): check memory-error
 * telemetry, decide on ECC, qualify an overclock, re-derive the rack
 * power budget, and push a firmware fix for a production deadlock —
 * all against the simulated fleet.
 */

#include <cstdio>

#include "chip/device.h"
#include "fleet/firmware.h"
#include "fleet/memory_error_study.h"
#include "fleet/overclocking.h"
#include "fleet/power_provisioning.h"

using namespace mtia;

int
main()
{
    std::printf("MTIA 2i fleet operations runbook\n");
    std::printf("================================\n\n");

    // 1. Memory-error telemetry and the ECC decision.
    std::printf("[1] memory-error telemetry (1,700 servers)\n");
    LpddrConfig lp;
    lp.peak_bandwidth = gbPerSec(204.8);
    lp.bit_error_rate = 1.9e-20;
    LpddrChannel channel(lp);
    MemoryErrorStudy errors(61);
    const FleetErrorReport rep =
        errors.sampleFleet(channel, 1700, 90.0, 64_GiB);
    std::printf("    %.0f%% of servers show ECC errors; enabling "
                "controller ECC (costs ~11%% bandwidth).\n\n",
                rep.serverErrorFraction() * 100.0);

    // 2. Overclock qualification.
    std::printf("[2] overclock qualification (3,000 chips)\n");
    OverclockingStudy oc(71);
    const OverclockReport ocr = oc.run(3000, {1.1, 1.25, 1.35});
    std::printf("    pass rate 1.10 GHz: %.3f%%   1.35 GHz: %.3f%% -> "
                "ship 1.35 GHz.\n\n",
                ocr.passRateAt(1.1) * 100.0,
                ocr.passRateAt(1.35) * 100.0);

    // 3. Power budget revision.
    std::printf("[3] rack power budget revision\n");
    Device dev(ChipConfig::mtia2i());
    PowerProvisioningStudy power(73, dev);
    const PowerBudgetReport budget = power.run(200, 14);
    std::printf("    %.0f W provisioned -> %.0f W derived from "
                "production (-%.0f%%).\n\n",
                budget.initial_budget_w, budget.final_budget_w,
                budget.reduction() * 100.0);

    // 4. The deadlock incident and the firmware fix.
    std::printf("[4] firmware: PCIe-loss incident\n");
    FirmwareManager fw(83, 10000);
    const FirmwareBundle buggy =
        fw.build("fw-2024.09", ControlMemLocation::HostMemory);
    const StressTestResult bad = fw.stressTest(buggy, 2000);
    std::printf("    stress suite: %.2f%% of servers lose PCIe under "
                "100%% PE load.\n",
                bad.pcie_loss_fraction * 100.0);
    ControlCore cc(ControlCoreConfig{4, ControlMemLocation::HostMemory});
    std::printf("    wait-for analysis: deadlock %s\n",
                cc.buildHighLoadScenario().hasDeadlock()
                    ? "CONFIRMED (Control Core <-> PCIe ordering "
                      "<-> NoC)"
                    : "not found");

    const FirmwareBundle fixed =
        fw.build("fw-2024.10", ControlMemLocation::DeviceSram);
    const StressTestResult good = fw.stressTest(fixed, 2000);
    std::printf("    mitigation (Control-Core memory -> device SRAM): "
                "stress %s.\n",
                good.passed ? "PASSES" : "still failing");

    const RolloutResult emergency = fw.rollout(
        fixed, FirmwareManager::emergencyPlan(false), 400);
    std::printf("    emergency rollout to 10,000 servers: %.1f hours "
                "(policy-limited waves of %u).\n",
                toSeconds(emergency.duration) / 3600.0,
                emergency.concurrent_restart_peak);
    std::printf("\nall four runbook items completed.\n");
    return 0;
}
