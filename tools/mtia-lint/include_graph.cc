#include "include_graph.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lexer.h"

namespace fs = std::filesystem;

namespace mtia_lint {
namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
}

std::string
moduleOf(const std::string &rel)
{
    const std::size_t slash = rel.find('/');
    return slash == std::string::npos ? rel : rel.substr(0, slash);
}

} // namespace

LayerTable
loadLayerTable(const std::string &path)
{
    LayerTable table;
    std::ifstream in(path);
    if (!in) {
        table.error = "cannot open layer table " + path;
        return table;
    }
    int next_rank = 0;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string kind;
        if (!(ss >> kind))
            continue;
        if (kind == "layer") {
            std::string mod;
            bool any = false;
            while (ss >> mod) {
                table.rank[mod] = next_rank;
                any = true;
            }
            if (!any) {
                table.error = path + ":" + std::to_string(lineno) +
                              ": empty layer declaration";
                return table;
            }
            table.max_rank = next_rank;
            ++next_rank;
        } else if (kind == "omni") {
            std::string mod, upto;
            if (!(ss >> mod)) {
                table.error = path + ":" + std::to_string(lineno) +
                              ": omni needs a module name";
                return table;
            }
            int max_use = -1; // may include nothing by default
            if (ss >> upto) {
                auto it = table.rank.find(upto);
                if (it == table.rank.end()) {
                    table.error = path + ":" + std::to_string(lineno) +
                                  ": omni upper bound '" + upto +
                                  "' is not a declared module";
                    return table;
                }
                max_use = it->second;
            }
            table.omni[mod] = max_use;
        } else {
            table.error = path + ":" + std::to_string(lineno) +
                          ": unknown declaration '" + kind + "'";
            return table;
        }
    }
    return table;
}

IncludeGraph
buildIncludeGraph(const std::string &src_root)
{
    IncludeGraph g;
    std::vector<fs::path> files;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(src_root, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &f : files) {
        std::ifstream in(f, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        const LexedFile lf = lex(buf.str());

        const std::string rel =
            fs::path(f).lexically_relative(src_root).generic_string();
        auto &edges = g.edges[rel]; // materialize even leaf files
        ++g.file_count;
        for (const Directive &d : lf.directives) {
            if (d.name != "include" || d.args.empty())
                continue;
            const std::string &spelling = d.args[0].text;
            if (spelling.size() < 2 || spelling.front() != '"')
                continue; // system include
            const std::string target =
                spelling.substr(1, spelling.size() - 2);
            if (!fs::exists(fs::path(src_root) / target))
                continue; // not a tree-relative include
            edges.push_back(target);
            g.edge_lines[rel].emplace(target, d.line);
            ++g.edge_count;
        }
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()),
                    edges.end());
    }
    return g;
}

std::vector<Finding>
checkLayers(const IncludeGraph &g, const LayerTable &layers,
            const std::string &display_prefix)
{
    std::vector<Finding> out;
    const auto lineOf = [&](const std::string &from,
                            const std::string &to) {
        auto fit = g.edge_lines.find(from);
        if (fit == g.edge_lines.end())
            return 0;
        auto eit = fit->second.find(to);
        return eit == fit->second.end() ? 0 : eit->second;
    };

    // Layer check on every module-crossing edge.
    for (const auto &[from, tos] : g.edges) {
        const std::string from_mod = moduleOf(from);
        for (const std::string &to : tos) {
            const std::string to_mod = moduleOf(to);
            if (from_mod == to_mod)
                continue;
            if (layers.omni.count(to_mod))
                continue; // includable from anywhere
            int from_rank;
            if (auto it = layers.omni.find(from_mod);
                it != layers.omni.end()) {
                from_rank = it->second; // omni module's own budget
            } else if (auto it = layers.rank.find(from_mod);
                       it != layers.rank.end()) {
                from_rank = it->second;
            } else {
                out.push_back(
                    {display_prefix + from, lineOf(from, to),
                     "layer-violation",
                     "module '" + from_mod +
                         "' is not declared in the layer table"});
                continue;
            }
            const auto to_it = layers.rank.find(to_mod);
            if (to_it == layers.rank.end()) {
                out.push_back(
                    {display_prefix + from, lineOf(from, to),
                     "layer-violation",
                     "included module '" + to_mod +
                         "' is not declared in the layer table"});
                continue;
            }
            if (to_it->second > from_rank)
                out.push_back(
                    {display_prefix + from, lineOf(from, to),
                     "layer-violation",
                     "upward include: " + from_mod + " (layer " +
                         std::to_string(from_rank) + ") -> " + to_mod +
                         " (layer " + std::to_string(to_it->second) +
                         ") inverts the architecture; see "
                         "tools/mtia-lint/layers.def"});
        }
    }

    // Cycle check on the file-level graph (iterative DFS, colored).
    enum { White, Grey, Black };
    std::map<std::string, int> color;
    std::set<std::string> reported; // one finding per cycle entry file
    for (const auto &[start, _] : g.edges) {
        if (color[start] != White)
            continue;
        struct Frame
        {
            std::string node;
            std::size_t next = 0;
        };
        std::vector<Frame> stack{{start, 0}};
        color[start] = Grey;
        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto eit = g.edges.find(f.node);
            if (eit == g.edges.end() || f.next >= eit->second.size()) {
                color[f.node] = Black;
                stack.pop_back();
                continue;
            }
            const std::string to = eit->second[f.next++];
            const int c = color[to];
            if (c == White) {
                color[to] = Grey;
                stack.push_back({to, 0});
            } else if (c == Grey) {
                // Back edge: the grey path from `to` back to f.node
                // plus this edge is a cycle.
                std::string path = to;
                bool in_cycle = false;
                for (const Frame &fr : stack) {
                    if (fr.node == to)
                        in_cycle = true;
                    else if (in_cycle)
                        path += " -> " + fr.node;
                }
                path += " -> " + to;
                if (reported.insert(to).second)
                    out.push_back({display_prefix + f.node,
                                   lineOf(f.node, to), "include-cycle",
                                   "include cycle: " + path});
            }
        }
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<std::string>
moduleEdges(const IncludeGraph &g)
{
    std::set<std::string> uniq;
    for (const auto &[from, tos] : g.edges) {
        const std::string fm = moduleOf(from);
        for (const std::string &to : tos) {
            const std::string tm = moduleOf(to);
            if (fm != tm)
                uniq.insert(fm + " -> " + tm);
        }
    }
    return {uniq.begin(), uniq.end()};
}

} // namespace mtia_lint
