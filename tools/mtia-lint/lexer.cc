#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace mtia_lint {
namespace {

/** Phase one: delete backslash-newline splices, remember the original
 *  physical line of every surviving character. */
struct Spliced
{
    std::string text;
    std::vector<int> line; // line[i] = physical line of text[i]
};

Spliced
splice(const std::string &src)
{
    Spliced out;
    out.text.reserve(src.size());
    out.line.reserve(src.size());
    int line = 1;
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        if (c == '\\') {
            std::size_t j = i + 1;
            if (j < src.size() && src[j] == '\r')
                ++j;
            if (j < src.size() && src[j] == '\n') {
                i = j; // swallow the splice
                ++line;
                continue;
            }
        }
        out.text.push_back(c);
        out.line.push_back(line);
        if (c == '\n')
            ++line;
    }
    return out;
}

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within a leading char. */
const char *const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "##", ".*",
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : s_(splice(src)) {}

    LexedFile run();

  private:
    int lineAt(std::size_t i) const
    {
        if (s_.line.empty())
            return 1;
        if (i >= s_.line.size())
            return s_.line.back();
        return s_.line[i];
    }
    char at(std::size_t i) const
    {
        return i < s_.text.size() ? s_.text[i] : '\0';
    }

    /** Consume a comment starting at i_ (line or block); records any
     *  sim-lint allow it carries. Returns true if one was consumed. */
    bool tryComment();
    /** Consume a string/char literal at i_ (prefix already included in
     *  [start, i_)); appends the token. Returns true if consumed. */
    bool tryLiteral(std::size_t start, int line, std::vector<Token> &out);
    void scanAllow(const std::string &comment, int line);
    Token lexOne(); // next code token; pre: not ws/comment/EOF
    void lexDirective();

    Spliced s_;
    std::size_t i_ = 0;
    LexedFile file_;
};

void
Lexer::scanAllow(const std::string &comment, int line)
{
    const std::string key = "sim-lint:";
    std::size_t k = comment.find(key);
    if (k == std::string::npos)
        return;
    std::size_t p = comment.find("allow(", k);
    if (p == std::string::npos)
        return;
    p += 6;
    std::size_t close = comment.find(')', p);
    if (close == std::string::npos)
        return;
    Allow &a = file_.allows[line];
    a.line = line;
    a.rules.insert(comment.substr(p, close - p));
    for (std::size_t q = close + 1; q < comment.size(); ++q) {
        if (std::isalnum(static_cast<unsigned char>(comment[q]))) {
            a.justified = true;
            break;
        }
    }
}

bool
Lexer::tryComment()
{
    if (at(i_) != '/' || (at(i_ + 1) != '/' && at(i_ + 1) != '*'))
        return false;
    const int line = lineAt(i_);
    std::size_t start = i_;
    if (at(i_ + 1) == '/') {
        while (i_ < s_.text.size() && s_.text[i_] != '\n')
            ++i_;
    } else {
        i_ += 2;
        while (i_ < s_.text.size() &&
               !(s_.text[i_] == '*' && at(i_ + 1) == '/'))
            ++i_;
        if (i_ < s_.text.size())
            i_ += 2;
    }
    scanAllow(s_.text.substr(start, i_ - start), line);
    return true;
}

bool
Lexer::tryLiteral(std::size_t start, int line, std::vector<Token> &out)
{
    const char q = at(i_);
    if (q != '"' && q != '\'')
        return false;
    // Raw string: the character before the quote, within the prefix,
    // is 'R' (covers R"", u8R"", LR"", ...).
    const bool raw = q == '"' && i_ > start && s_.text[i_ - 1] == 'R';
    ++i_;
    if (raw) {
        std::string delim;
        while (i_ < s_.text.size() && s_.text[i_] != '(')
            delim.push_back(s_.text[i_++]);
        ++i_; // '('
        const std::string close = ")" + delim + "\"";
        std::size_t end = s_.text.find(close, i_);
        i_ = end == std::string::npos ? s_.text.size()
                                      : end + close.size();
    } else {
        while (i_ < s_.text.size() && s_.text[i_] != q &&
               s_.text[i_] != '\n') {
            if (s_.text[i_] == '\\')
                ++i_;
            ++i_;
        }
        if (at(i_) == q)
            ++i_;
    }
    out.push_back({q == '\'' ? Tok::CharLit : Tok::String,
                   s_.text.substr(start, i_ - start), line});
    return true;
}

Token
Lexer::lexOne()
{
    const std::size_t start = i_;
    const int line = lineAt(i_);
    const char c = s_.text[i_];

    if (identStart(c)) {
        while (i_ < s_.text.size() && identCont(s_.text[i_]))
            ++i_;
        // A literal prefix (R, u8, L, ...) glued to a quote makes the
        // whole thing one literal token.
        std::vector<Token> lit;
        if ((at(i_) == '"' || at(i_) == '\'') && i_ - start <= 3 &&
            tryLiteral(start, line, lit))
            return lit.back();
        return {Tok::Ident, s_.text.substr(start, i_ - start), line};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i_ + 1))))) {
        ++i_; // pp-number: digits, idents, dots, exponent signs
        while (i_ < s_.text.size()) {
            const char d = s_.text[i_];
            if (identCont(d) || d == '.') {
                ++i_;
            } else if (d == '\'' && identCont(at(i_ + 1))) {
                i_ += 2; // digit separator
            } else if ((d == '+' || d == '-') &&
                       (s_.text[i_ - 1] == 'e' || s_.text[i_ - 1] == 'E' ||
                        s_.text[i_ - 1] == 'p' || s_.text[i_ - 1] == 'P')) {
                ++i_;
            } else {
                break;
            }
        }
        return {Tok::Number, s_.text.substr(start, i_ - start), line};
    }
    {
        std::vector<Token> lit;
        if (tryLiteral(start, line, lit))
            return lit.back();
    }
    for (const char *p : kPuncts) {
        const std::size_t n = std::char_traits<char>::length(p);
        if (s_.text.compare(i_, n, p) == 0) {
            i_ += n;
            return {Tok::Punct, p, line};
        }
    }
    ++i_;
    return {Tok::Punct, std::string(1, c), line};
}

void
Lexer::lexDirective()
{
    Directive d;
    d.line = lineAt(i_);
    ++i_; // '#'
    // Name (possibly separated from '#' by spaces).
    while (i_ < s_.text.size() &&
           (s_.text[i_] == ' ' || s_.text[i_] == '\t'))
        ++i_;
    while (i_ < s_.text.size() && identCont(s_.text[i_]))
        d.name.push_back(s_.text[i_++]);

    bool want_header_name = d.name == "include";
    while (i_ < s_.text.size() && s_.text[i_] != '\n') {
        const char c = s_.text[i_];
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i_;
            continue;
        }
        if (at(i_) == '/' && at(i_ + 1) == '/') {
            tryComment(); // runs to end of line: directive over
            break;
        }
        if (at(i_) == '/' && at(i_ + 1) == '*') {
            tryComment();
            continue;
        }
        if (want_header_name && c == '<') {
            const std::size_t start = i_;
            const int line = lineAt(i_);
            while (i_ < s_.text.size() && s_.text[i_] != '>' &&
                   s_.text[i_] != '\n')
                ++i_;
            if (at(i_) == '>')
                ++i_;
            d.args.push_back({Tok::String,
                              s_.text.substr(start, i_ - start), line});
            want_header_name = false;
            continue;
        }
        d.args.push_back(lexOne());
    }
    file_.directives.push_back(std::move(d));
}

LexedFile
Lexer::run()
{
    bool at_line_start = true;
    while (i_ < s_.text.size()) {
        const char c = s_.text[i_];
        if (c == '\n') {
            at_line_start = true;
            ++i_;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
            c == '\v') {
            ++i_;
            continue;
        }
        if (tryComment())
            continue;
        if (c == '#' && at_line_start) {
            lexDirective();
            at_line_start = true;
            continue;
        }
        at_line_start = false;
        file_.tokens.push_back(lexOne());
    }
    file_.max_line = s_.line.empty() ? 1 : s_.line.back();
    return file_;
}

} // namespace

LexedFile
lex(const std::string &text)
{
    return Lexer(text).run();
}

} // namespace mtia_lint
