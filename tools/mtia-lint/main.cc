/**
 * mtia-lint: compiled cross-TU static analyzer for the simulator's
 * determinism and layering invariants.
 *
 * Token-level ports of every scripts/check_sim_invariants.py rule
 * (no string/comment false positives), plus:
 *   - a cross-TU include-graph pass enforcing the declared layer DAG
 *     (tools/mtia-lint/layers.def) and rejecting include cycles;
 *   - unordered-iteration, pointer-key-ordered and parallel-capture,
 *     determinism rules that need real tokens;
 *   - bare-allow, the suppression-hygiene rule: every
 *     `// sim-lint: allow(<rule>)` must carry a justification.
 *
 * Usage:
 *   mtia-lint [--root DIR] [--layers FILE] [--json FILE]
 *             [--graph-src DIR] [--no-graph] [--treat-as-src]
 *             [--dump-module-graph] [PATH ...]
 *
 * With no PATH arguments, lints src/, bench/ and tools/ under --root
 * and runs the include-graph pass over src/. Exits 1 on any
 * violation, 2 on usage or I/O errors.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "include_graph.h"
#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;
using mtia_lint::Finding;

namespace {

struct Options
{
    std::string root;
    std::string layers;     // defaults to root/tools/mtia-lint/layers.def
    std::string json;       // write a machine-readable report here
    std::string graph_src;  // override tree for the include-graph pass
    bool no_graph = false;
    bool treat_as_src = false;
    bool dump_module_graph = false;
    std::vector<std::string> paths;
};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
}

void
collect(const fs::path &p, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
        if (isSourceFile(p))
            out.push_back(p);
        return;
    }
    std::vector<fs::path> found;
    for (fs::recursive_directory_iterator it(p, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && isSourceFile(it->path()))
            found.push_back(it->path());
    }
    std::sort(found.begin(), found.end());
    out.insert(out.end(), found.begin(), found.end());
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonReport(const std::string &path, const std::string &root,
                int files_linted, const std::vector<Finding> &findings,
                const mtia_lint::IncludeGraph *graph)
{
    std::ofstream out(path);
    out << "{\n  \"schema\": \"mtia-lint-report-v1\",\n"
        << "  \"root\": \"" << jsonEscape(root) << "\",\n"
        << "  \"files_linted\": " << files_linted << ",\n"
        << "  \"violations\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << (i ? ",\n    " : "\n    ") << "{\"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << jsonEscape(f.rule)
            << "\", \"detail\": \"" << jsonEscape(f.detail) << "\"}";
    }
    out << (findings.empty() ? "]" : "\n  ]");
    if (graph) {
        out << ",\n  \"include_graph\": {\"files\": "
            << graph->file_count << ", \"edges\": " << graph->edge_count
            << ", \"module_edges\": [";
        const auto edges = mtia_lint::moduleEdges(*graph);
        for (std::size_t i = 0; i < edges.size(); ++i)
            out << (i ? ", " : "") << "\"" << jsonEscape(edges[i])
                << "\"";
        out << "]}";
    }
    out << "\n}\n";
}

int
fail(const std::string &msg)
{
    std::cerr << "mtia-lint: " << msg << "\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--root") {
            const char *v = next();
            if (!v)
                return fail("--root needs a value");
            opt.root = v;
        } else if (a == "--layers") {
            const char *v = next();
            if (!v)
                return fail("--layers needs a value");
            opt.layers = v;
        } else if (a == "--json") {
            const char *v = next();
            if (!v)
                return fail("--json needs a value");
            opt.json = v;
        } else if (a == "--graph-src") {
            const char *v = next();
            if (!v)
                return fail("--graph-src needs a value");
            opt.graph_src = v;
        } else if (a == "--no-graph") {
            opt.no_graph = true;
        } else if (a == "--treat-as-src") {
            opt.treat_as_src = true;
        } else if (a == "--dump-module-graph") {
            opt.dump_module_graph = true;
        } else if (a == "--help" || a == "-h") {
            std::cout
                << "usage: mtia-lint [--root DIR] [--layers FILE] "
                   "[--json FILE]\n                 [--graph-src DIR] "
                   "[--no-graph] [--treat-as-src]\n                 "
                   "[--dump-module-graph] [PATH ...]\n";
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            return fail("unknown option " + a);
        } else {
            opt.paths.push_back(a);
        }
    }

    const fs::path root =
        fs::absolute(opt.root.empty() ? "." : opt.root)
            .lexically_normal();
    if (!fs::exists(root))
        return fail("root " + root.string() + " does not exist");
    if (opt.layers.empty())
        opt.layers = (root / "tools/mtia-lint/layers.def").string();

    // ------------------------------------------------------ targets
    const bool default_targets = opt.paths.empty();
    std::vector<fs::path> files;
    if (default_targets) {
        for (const char *d : {"src", "bench", "tools"})
            if (fs::exists(root / d))
                collect(root / d, files);
    } else {
        for (const std::string &p : opt.paths)
            collect(fs::absolute(p).lexically_normal(), files);
    }

    // -------------------------------------------------- rule engine
    std::vector<Finding> findings;
    int files_linted = 0;
    for (const fs::path &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            findings.push_back(
                {f.string(), 0, "io-error", "cannot read file"});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        ++files_linted;

        std::string rel = f.lexically_relative(root).generic_string();
        if (rel.empty() || rel.compare(0, 2, "..") == 0)
            rel = f.generic_string();

        mtia_lint::FileContext ctx;
        const bool in_src = rel.rfind("src/", 0) == 0;
        ctx.in_src = in_src || opt.treat_as_src;
        ctx.logging_exempt = rel.rfind("src/sim/logging", 0) == 0;
        ctx.telemetry =
            rel.rfind("src/telemetry/", 0) == 0 || opt.treat_as_src;
        ctx.sim_core =
            rel.rfind("src/sim/", 0) == 0 || opt.treat_as_src;
        ctx.dtype_kernel = rel.rfind("src/tensor/dtype.", 0) == 0;
        ctx.simd_kernel = rel.rfind("src/core/simd", 0) == 0;
        const std::string ext = f.extension().string();
        ctx.is_header = ext == ".h" || ext == ".hpp";

        const mtia_lint::LexedFile lf = mtia_lint::lex(buf.str());
        auto file_findings = mtia_lint::runRules(lf, rel, ctx);
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }

    // ------------------------------------------- include-graph pass
    const bool want_graph =
        !opt.no_graph && (default_targets || !opt.graph_src.empty() ||
                          opt.dump_module_graph);
    mtia_lint::IncludeGraph graph;
    bool have_graph = false;
    if (want_graph) {
        const fs::path src_root = opt.graph_src.empty()
                                      ? root / "src"
                                      : fs::absolute(opt.graph_src);
        if (fs::exists(src_root)) {
            graph = mtia_lint::buildIncludeGraph(src_root.string());
            have_graph = true;
            const std::string prefix =
                opt.graph_src.empty()
                    ? "src/"
                    : src_root.lexically_relative(root)
                              .generic_string() +
                          "/";
            const mtia_lint::LayerTable layers =
                mtia_lint::loadLayerTable(opt.layers);
            if (!layers.error.empty())
                return fail(layers.error);
            auto graph_findings =
                mtia_lint::checkLayers(graph, layers, prefix);
            findings.insert(findings.end(), graph_findings.begin(),
                            graph_findings.end());
        }
    }

    if (opt.dump_module_graph && have_graph) {
        for (const std::string &e : mtia_lint::moduleEdges(graph))
            std::cout << e << "\n";
        return 0;
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });

    for (const Finding &f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.detail << "\n";

    if (!opt.json.empty())
        writeJsonReport(opt.json, root.string(), files_linted, findings,
                        have_graph ? &graph : nullptr);

    if (!findings.empty()) {
        std::cout << "\n" << findings.size() << " violation(s) in "
                  << files_linted << " file(s)\n";
        return 1;
    }
    std::cout << "ok: " << files_linted << " file(s) clean";
    if (have_graph)
        std::cout << "; include graph: " << graph.file_count
                  << " files, " << graph.edge_count
                  << " edges, layer DAG holds";
    std::cout << "\n";
    return 0;
}
