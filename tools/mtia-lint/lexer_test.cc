// Unit tests for the mtia-lint lexer: the properties the regex linter
// could never guarantee — comments and string literals produce no
// code tokens, raw strings swallow their payload wholesale, line
// continuations splice into one logical line, and suppression
// comments surface with their justification bit.

#include "lexer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mtia_lint {
namespace {

std::vector<std::string>
spellings(const LexedFile &lf)
{
    std::vector<std::string> out;
    out.reserve(lf.tokens.size());
    for (const Token &t : lf.tokens)
        out.push_back(t.text);
    return out;
}

TEST(LintLexer, CommentsProduceNoTokens)
{
    const LexedFile lf = lex("int a; // std::cout << rand();\n"
                             "/* std::chrono::system_clock */ int b;\n"
                             "/* multi\n line\n comment */ int c;\n");
    EXPECT_EQ(spellings(lf),
              (std::vector<std::string>{"int", "a", ";", "int", "b",
                                        ";", "int", "c", ";"}));
    EXPECT_EQ(lf.tokens[3].line, 2); // int b after the block comment
    EXPECT_EQ(lf.tokens[6].line, 5); // int c after the multi-line one
}

TEST(LintLexer, StringAndCharLiteralsAreOpaque)
{
    const LexedFile lf =
        lex("f(\"std::cout << rand()\", '\\'', \"a // b\");\n");
    ASSERT_EQ(lf.tokens.size(), 9u); // f ( str , char , str ) ;
    EXPECT_EQ(lf.tokens[2].kind, Tok::String);
    EXPECT_EQ(lf.tokens[4].kind, Tok::CharLit);
    EXPECT_EQ(lf.tokens[6].kind, Tok::String);
    EXPECT_EQ(lf.tokens[6].text, "\"a // b\"");
}

TEST(LintLexer, RawStringsSwallowEverything)
{
    const LexedFile lf = lex("auto s = R\"(printf(\"%d\");\n"
                             "std::cout << rand();)\";\n"
                             "int after;\n");
    ASSERT_GE(lf.tokens.size(), 6u);
    EXPECT_EQ(lf.tokens[0].text, "auto");
    EXPECT_EQ(lf.tokens[3].kind, Tok::String);
    EXPECT_EQ(lf.tokens[3].line, 1);
    // Nothing inside the raw string leaked out as a token.
    for (const Token &t : lf.tokens)
        EXPECT_NE(t.text, "rand");
    EXPECT_EQ(lf.tokens[6].text, "after");
    EXPECT_EQ(lf.tokens[6].line, 3);
}

TEST(LintLexer, DelimitedRawString)
{
    const LexedFile lf = lex("auto s = R\"x(a )\" b)x\";\n int n;");
    ASSERT_GE(lf.tokens.size(), 5u);
    EXPECT_EQ(lf.tokens[3].text, "R\"x(a )\" b)x\"");
    EXPECT_EQ(lf.tokens[4].text, ";");
}

TEST(LintLexer, LineContinuationSplicesDirectives)
{
    const LexedFile lf = lex("#define LONG_MACRO(x) \\\n"
                             "    do_something(x); \\\n"
                             "    more(x)\n"
                             "int y;\n");
    ASSERT_EQ(lf.directives.size(), 1u);
    const Directive &d = lf.directives[0];
    EXPECT_EQ(d.name, "define");
    EXPECT_EQ(d.line, 1);
    // The spliced logical line holds every continuation's tokens.
    bool saw_more = false;
    for (const Token &t : d.args)
        saw_more |= t.text == "more";
    EXPECT_TRUE(saw_more);
    // Code after the macro is ordinary tokens on the right line.
    ASSERT_EQ(lf.tokens.size(), 3u);
    EXPECT_EQ(lf.tokens[0].text, "int");
    EXPECT_EQ(lf.tokens[0].line, 4);
}

TEST(LintLexer, LineContinuationInCode)
{
    const LexedFile lf = lex("int a = b \\\n + c;\n");
    EXPECT_EQ(spellings(lf),
              (std::vector<std::string>{"int", "a", "=", "b", "+", "c",
                                        ";"}));
    EXPECT_EQ(lf.tokens[4].line, 2); // '+' sits on the physical line 2
}

TEST(LintLexer, IncludeDirectivesKeepSpelling)
{
    const LexedFile lf = lex("#include <sys/time.h>\n"
                             "#include \"core/check.h\"\n"
                             "# include <chrono>\n");
    ASSERT_EQ(lf.directives.size(), 3u);
    EXPECT_EQ(lf.directives[0].args[0].text, "<sys/time.h>");
    EXPECT_EQ(lf.directives[1].args[0].text, "\"core/check.h\"");
    EXPECT_EQ(lf.directives[2].args[0].text, "<chrono>");
    EXPECT_EQ(lf.directives[2].line, 3);
}

TEST(LintLexer, HashInCodeIsNotADirective)
{
    const LexedFile lf = lex("int a; int b = a\n#if 0\nint c;\n#endif\n");
    ASSERT_EQ(lf.directives.size(), 2u);
    EXPECT_EQ(lf.directives[0].name, "if");
    EXPECT_EQ(lf.directives[1].name, "endif");
}

TEST(LintLexer, MultiCharPunctuators)
{
    const LexedFile lf = lex("a->b; c::d; e += f; g == h; i <<= j;");
    const auto sp = spellings(lf);
    EXPECT_NE(std::find(sp.begin(), sp.end(), "->"), sp.end());
    EXPECT_NE(std::find(sp.begin(), sp.end(), "::"), sp.end());
    EXPECT_NE(std::find(sp.begin(), sp.end(), "+="), sp.end());
    EXPECT_NE(std::find(sp.begin(), sp.end(), "=="), sp.end());
    EXPECT_NE(std::find(sp.begin(), sp.end(), "<<="), sp.end());
}

TEST(LintLexer, NumbersWithSeparatorsAndExponents)
{
    const LexedFile lf = lex("x = 1'000'000 + 0x1.8p-3 + 1e+9;");
    ASSERT_GE(lf.tokens.size(), 7u);
    EXPECT_EQ(lf.tokens[2].text, "1'000'000");
    EXPECT_EQ(lf.tokens[4].text, "0x1.8p-3");
    EXPECT_EQ(lf.tokens[6].text, "1e+9");
}

TEST(LintLexer, AllowCommentsAreExtracted)
{
    const LexedFile lf =
        lex("a(); // sim-lint: allow(wall-clock) — bench timing\n"
            "b(); // sim-lint: allow(raw-output)\n"
            "c(); // no suppression here\n");
    ASSERT_EQ(lf.allows.size(), 2u);
    EXPECT_TRUE(lf.allows.at(1).rules.count("wall-clock"));
    EXPECT_TRUE(lf.allows.at(1).justified);
    EXPECT_TRUE(lf.allows.at(2).rules.count("raw-output"));
    EXPECT_FALSE(lf.allows.at(2).justified);
}

TEST(LintLexer, LiteralPrefixes)
{
    const LexedFile lf = lex("auto a = u8\"x\"; auto b = L\"y\"; "
                             "auto c = u8R\"(z)\";");
    int strings = 0;
    for (const Token &t : lf.tokens)
        strings += t.kind == Tok::String;
    EXPECT_EQ(strings, 3);
}

} // namespace
} // namespace mtia_lint
