#ifndef MTIA_LINT_LEXER_H_
#define MTIA_LINT_LEXER_H_

/**
 * @file
 * A real (if deliberately small) C++ lexer for mtia-lint. Unlike the
 * regex linter it descends from, it understands the token structure
 * of the language: line continuations are spliced first, comments and
 * string/char literals (including raw strings) are consumed as whole
 * units, and preprocessor directives are captured as logical lines —
 * so a "std::cout" inside a string literal or a commented-out rand()
 * can never produce a finding, and a macro continued across five
 * physical lines is still one directive.
 *
 * The lexer also extracts the two comment-borne facts the rule engine
 * needs: `// sim-lint: allow(<rule>)` suppressions (with whether a
 * justification follows the closing parenthesis) and nothing else —
 * comments are otherwise discarded.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtia_lint {

enum class Tok {
    Ident,   ///< identifier or keyword
    Number,  ///< pp-number (integer/float, any base)
    String,  ///< string literal, prefixes and raw strings included
    CharLit, ///< character literal
    Punct,   ///< operator / punctuator (longest-match)
};

struct Token
{
    Tok kind;
    std::string text; ///< spelling; for String/CharLit the full literal
    int line;         ///< 1-based physical line of the first character
};

/** One preprocessor directive, continuations spliced. */
struct Directive
{
    std::string name; ///< "include", "ifndef", "define", "pragma", ...
    /** Argument tokens (comments stripped). For #include the single
     *  String-like token keeps its <...> or "..." spelling. */
    std::vector<Token> args;
    int line; ///< line of the '#'
};

/** A sim-lint suppression comment. */
struct Allow
{
    std::set<std::string> rules; ///< rules named on this line
    bool justified = false; ///< text follows the closing parenthesis
    int line = 0;
};

struct LexedFile
{
    std::vector<Token> tokens;        ///< non-preprocessor code tokens
    std::vector<Directive> directives;///< in source order
    std::map<int, Allow> allows;      ///< by line of the comment start
    int max_line = 0;
};

/** Tokenize @p text. Never fails: unterminated constructs are closed
 *  at end of file and lexing continues. */
LexedFile lex(const std::string &text);

} // namespace mtia_lint

#endif // MTIA_LINT_LEXER_H_
