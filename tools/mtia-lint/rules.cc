#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace mtia_lint {
namespace {

using Tokens = std::vector<Token>;

bool
isIdent(const Tokens &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == Tok::Ident && t[i].text == s;
}

bool
isPunct(const Tokens &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == Tok::Punct && t[i].text == s;
}

bool
anyIdent(const Tokens &t, std::size_t i,
         std::initializer_list<const char *> names)
{
    if (i >= t.size() || t[i].kind != Tok::Ident)
        return false;
    for (const char *n : names)
        if (t[i].text == n)
            return true;
    return false;
}

/** How the token at @p i is qualified, mirroring the Python regexes'
 *  `(?<![\w:.])` lookbehind with an optional `std::`. */
enum class Qual { None, Std, Member, Other };

Qual
qualOf(const Tokens &t, std::size_t i)
{
    if (i == 0)
        return Qual::None;
    const Token &p = t[i - 1];
    if (p.kind == Tok::Punct && (p.text == "." || p.text == "->"))
        return Qual::Member;
    if (p.kind == Tok::Punct && p.text == "::")
        return isIdent(t, i - 2, "std") ? Qual::Std : Qual::Other;
    return Qual::None;
}

/** Index just past the matching close for the open paren/brace/bracket
 *  at @p open (which must hold the opener). Returns t.size() if
 *  unbalanced. */
std::size_t
matchClose(const Tokens &t, std::size_t open, const char *o, const char *c)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (isPunct(t, i, o))
            ++depth;
        else if (isPunct(t, i, c) && --depth == 0)
            return i + 1;
    }
    return t.size();
}

class RuleRunner
{
  public:
    RuleRunner(const LexedFile &lf, const std::string &file,
               const FileContext &ctx)
        : lf_(lf), t_(lf.tokens), file_(file), ctx_(ctx)
    {
    }

    std::vector<Finding> run();

  private:
    void report(int line, const std::string &rule,
                const std::string &detail)
    {
        auto it = lf_.allows.find(line);
        if (it != lf_.allows.end() && it->second.rules.count(rule))
            return;
        findings_.push_back({file_, line, rule, detail});
    }

    void wallClock();
    void unseededRng();
    void rawOutput();
    void includeGuard();
    void checkSideEffect();
    void telemetryWallClock();
    void duplicateInclude();
    void heapTopCopy();
    void scalarHotLoop();
    void rawIntrinsics();
    void unorderedIteration();
    void pointerKeyOrdered();
    void parallelCapture();
    void bareAllow();

    const LexedFile &lf_;
    const Tokens &t_;
    const std::string &file_;
    const FileContext &ctx_;
    std::vector<Finding> findings_;
};

void
RuleRunner::wallClock()
{
    for (std::size_t i = 0; i < t_.size(); ++i) {
        if (isIdent(t_, i, "std") && isPunct(t_, i + 1, "::") &&
            isIdent(t_, i + 2, "chrono") && isPunct(t_, i + 3, "::") &&
            anyIdent(t_, i + 4, {"system_clock", "steady_clock",
                                 "high_resolution_clock"})) {
            report(t_[i].line, "wall-clock",
                   "host wall-clock time in simulator code; use "
                   "EventQueue ticks");
            continue;
        }
        if (isIdent(t_, i, "gettimeofday") && isPunct(t_, i + 1, "(") &&
            qualOf(t_, i) == Qual::None) {
            report(t_[i].line, "wall-clock",
                   "host wall-clock time in simulator code; use "
                   "EventQueue ticks");
            continue;
        }
        const Qual q = qualOf(t_, i);
        if (q != Qual::None && q != Qual::Std)
            continue;
        if (isIdent(t_, i, "time") && isPunct(t_, i + 1, "(") &&
            (anyIdent(t_, i + 2, {"NULL", "nullptr"}) ||
             (i + 2 < t_.size() && t_[i + 2].kind == Tok::Number &&
              t_[i + 2].text == "0") ||
             isPunct(t_, i + 2, "&"))) {
            report(t_[i].line, "wall-clock",
                   "host wall-clock time in simulator code; use "
                   "EventQueue ticks");
        }
        if (isIdent(t_, i, "clock") && isPunct(t_, i + 1, "(") &&
            isPunct(t_, i + 2, ")")) {
            report(t_[i].line, "wall-clock",
                   "host wall-clock time in simulator code; use "
                   "EventQueue ticks");
        }
    }
}

void
RuleRunner::unseededRng()
{
    for (std::size_t i = 0; i < t_.size(); ++i) {
        const Qual q = qualOf(t_, i);
        if (anyIdent(t_, i, {"rand", "srand"}) &&
            isPunct(t_, i + 1, "(") &&
            (q == Qual::None || q == Qual::Std)) {
            report(t_[i].line, "unseeded-rng",
                   "unseeded/global randomness; use an explicitly "
                   "seeded mtia::Rng");
            continue;
        }
        if (!isIdent(t_, i, "std") || !isPunct(t_, i + 1, "::"))
            continue;
        if (isIdent(t_, i + 2, "random_device")) {
            report(t_[i].line, "unseeded-rng",
                   "unseeded/global randomness; use an explicitly "
                   "seeded mtia::Rng");
            continue;
        }
        if (anyIdent(t_, i + 2, {"mt19937", "mt19937_64"}) &&
            i + 3 < t_.size() && t_[i + 3].kind == Tok::Ident) {
            // A default construction: `std::mt19937 g;` / `g{}` / `g()`.
            if (isPunct(t_, i + 4, ";") ||
                (isPunct(t_, i + 4, "{") && isPunct(t_, i + 5, "}")) ||
                (isPunct(t_, i + 4, "(") && isPunct(t_, i + 5, ")"))) {
                report(t_[i].line, "unseeded-rng",
                       "unseeded/global randomness; use an explicitly "
                       "seeded mtia::Rng");
            }
        }
    }
}

void
RuleRunner::rawOutput()
{
    if (!ctx_.in_src || ctx_.logging_exempt)
        return;
    for (std::size_t i = 0; i < t_.size(); ++i) {
        if (isIdent(t_, i, "std") && isPunct(t_, i + 1, "::") &&
            anyIdent(t_, i + 2, {"cout", "cerr"})) {
            report(t_[i].line, "raw-output",
                   "direct console output in src/; use sim/logging "
                   "(warn/inform)");
            continue;
        }
        if (qualOf(t_, i) != Qual::None)
            continue;
        const bool hit =
            (anyIdent(t_, i, {"printf", "puts"}) &&
             isPunct(t_, i + 1, "(")) ||
            (isIdent(t_, i, "fprintf") && isPunct(t_, i + 1, "(") &&
             isIdent(t_, i + 2, "stdout"));
        if (hit)
            report(t_[i].line, "raw-output",
                   "direct console output in src/; use sim/logging "
                   "(warn/inform)");
    }
}

void
RuleRunner::includeGuard()
{
    if (!ctx_.is_header)
        return;
    const Directive *ifndef = nullptr;
    const Directive *define = nullptr;
    for (std::size_t i = 0; i < lf_.directives.size(); ++i) {
        const Directive &d = lf_.directives[i];
        if (!ifndef && d.name == "pragma" && !d.args.empty() &&
            d.args[0].kind == Tok::Ident && d.args[0].text == "once") {
            report(d.line, "include-guard",
                   "#pragma once; use an #ifndef guard (repo "
                   "convention)");
            return;
        }
        if (d.name == "ifndef") {
            ifndef = &d;
            // The #define must be the immediately following line.
            if (i + 1 < lf_.directives.size() &&
                lf_.directives[i + 1].name == "define" &&
                lf_.directives[i + 1].line == d.line + 1)
                define = &lf_.directives[i + 1];
            break;
        }
    }
    const auto sym = [](const Directive *d) -> std::string {
        return (d && !d->args.empty() && d->args[0].kind == Tok::Ident)
                   ? d->args[0].text
                   : std::string();
    };
    if (!ifndef || !define || sym(ifndef).empty() ||
        sym(define).empty()) {
        report(1, "include-guard",
               "missing #ifndef/#define include guard");
        return;
    }
    if (sym(ifndef) != sym(define))
        report(define->line, "include-guard",
               "guard mismatch: #ifndef " + sym(ifndef) +
                   " vs #define " + sym(define));
}

void
RuleRunner::checkSideEffect()
{
    static const std::set<std::string> kChecks = {
        "MTIA_CHECK",     "MTIA_DCHECK",    "MTIA_CHECK_EQ",
        "MTIA_CHECK_NE",  "MTIA_CHECK_LT",  "MTIA_CHECK_LE",
        "MTIA_CHECK_GT",  "MTIA_CHECK_GE",  "MTIA_DCHECK_EQ",
        "MTIA_DCHECK_NE", "MTIA_DCHECK_LT", "MTIA_DCHECK_LE",
        "MTIA_DCHECK_GT", "MTIA_DCHECK_GE",
    };
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
        if (t_[i].kind != Tok::Ident || !kChecks.count(t_[i].text) ||
            !isPunct(t_, i + 1, "("))
            continue;
        const std::size_t end = matchClose(t_, i + 1, "(", ")");
        for (std::size_t j = i + 2; j + 1 < end + 1 && j < end - 1;
             ++j) {
            if (t_[j].kind == Tok::Punct &&
                (t_[j].text == "++" || t_[j].text == "--" ||
                 t_[j].text == "=")) {
                report(t_[i].line, "check-side-effect",
                       "side effect inside a check condition; "
                       "MTIA_DCHECK conditions vanish in release "
                       "builds");
                break;
            }
        }
        i = end > i ? end - 1 : i;
    }
}

void
RuleRunner::telemetryWallClock()
{
    if (!ctx_.telemetry)
        return;
    static const std::set<std::string> kTimeHeaders = {
        "<chrono>", "<ctime>", "<time.h>", "<sys/time.h>"};
    for (const Directive &d : lf_.directives) {
        if (d.name == "include" && !d.args.empty() &&
            kTimeHeaders.count(d.args[0].text)) {
            report(d.line, "telemetry-wall-clock",
                   "time-source include or std::chrono in "
                   "src/telemetry/; exports must be derived from sim "
                   "ticks only");
        }
    }
    for (std::size_t i = 0; i + 2 < t_.size(); ++i) {
        if (isIdent(t_, i, "std") && isPunct(t_, i + 1, "::") &&
            isIdent(t_, i + 2, "chrono"))
            report(t_[i].line, "telemetry-wall-clock",
                   "time-source include or std::chrono in "
                   "src/telemetry/; exports must be derived from sim "
                   "ticks only");
    }
}

void
RuleRunner::duplicateInclude()
{
    std::map<std::string, int> first;
    for (const Directive &d : lf_.directives) {
        if (d.name != "include" || d.args.empty())
            continue;
        const std::string &target = d.args[0].text;
        auto [it, inserted] = first.emplace(target, d.line);
        if (!inserted)
            report(d.line, "duplicate-include",
                   target + " already included on line " +
                       std::to_string(it->second));
    }
}

void
RuleRunner::heapTopCopy()
{
    if (!ctx_.sim_core)
        return;
    for (std::size_t i = 2; i < t_.size(); ++i) {
        if (!isIdent(t_, i, "top") || !isPunct(t_, i + 1, "(") ||
            !isPunct(t_, i + 2, ")"))
            continue;
        if (!isPunct(t_, i - 1, ".") && !isPunct(t_, i - 1, "->"))
            continue;
        // Walk the postfix chain (`a.b->c.top()`) back to its base.
        std::size_t k = i - 2;
        if (k >= t_.size() || t_[k].kind != Tok::Ident)
            continue;
        while (k >= 2 &&
               (isPunct(t_, k - 1, ".") || isPunct(t_, k - 1, "->")) &&
               t_[k - 2].kind == Tok::Ident)
            k -= 2;
        if (k == 0 || !isPunct(t_, k - 1, "="))
            continue;
        // `const Entry &e = q.top()` binds a reference: exempt.
        const std::size_t eq = k - 1;
        if (eq >= 2 && t_[eq - 1].kind == Tok::Ident &&
            (isPunct(t_, eq - 2, "&") || isPunct(t_, eq - 2, "&&")))
            continue;
        report(t_[eq].line, "heap-top-copy",
               "copy of a priority-queue top before pop; entries "
               "carry callbacks, so this deep-copies a closure per "
               "dispatch — bind a const reference or move first");
    }
}

void
RuleRunner::scalarHotLoop()
{
    if (ctx_.dtype_kernel)
        return;
    std::set<int> loop_lines;
    for (const Token &tok : t_)
        if (tok.kind == Tok::Ident &&
            (tok.text == "for" || tok.text == "while"))
            loop_lines.insert(tok.line);
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
        if (!anyIdent(t_, i, {"fp32ToFp16Bits", "fp16BitsToFp32",
                              "fp32ToBf16Bits", "bf16BitsToFp32"}) ||
            !isPunct(t_, i + 1, "("))
            continue;
        const int line = t_[i].line;
        auto it = loop_lines.lower_bound(line - 4);
        if (it != loop_lines.end() && *it <= line)
            report(line, "scalar-hot-loop",
                   "per-element dtype conversion in a loop; use "
                   "convertBuffer so the batch kernels (core/simd.h) "
                   "run instead");
    }
}

/** NEON-intrinsic-shaped name: starts `v<lower>`, ends with a lane
 *  type suffix `_[fsup](8|16|32|64)` — vld1q_f32, vmulq_s32, … */
bool
neonLike(const std::string &s)
{
    if (s.size() < 4 || s[0] != 'v' || s[1] < 'a' || s[1] > 'z')
        return false;
    const std::size_t us = s.rfind('_');
    if (us == std::string::npos || us + 2 > s.size() - 1)
        return false;
    const char lane = s[us + 1];
    if (lane != 'f' && lane != 's' && lane != 'u' && lane != 'p')
        return false;
    const std::string bits = s.substr(us + 2);
    return bits == "8" || bits == "16" || bits == "32" || bits == "64";
}

void
RuleRunner::rawIntrinsics()
{
    if (!ctx_.in_src || ctx_.simd_kernel)
        return;
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
        if (t_[i].kind != Tok::Ident || !isPunct(t_, i + 1, "(") ||
            qualOf(t_, i) != Qual::None)
            continue;
        const std::string &s = t_[i].text;
        if (s.compare(0, 3, "_mm") != 0 && !neonLike(s))
            continue;
        report(t_[i].line, "raw-intrinsics",
               "raw SIMD intrinsic outside src/core/simd*; go through "
               "the core/simd.h wrappers so every dispatch tier stays "
               "bit-exact and portable");
    }
}

void
RuleRunner::unorderedIteration()
{
    if (!ctx_.in_src)
        return;
    // Pass 1: names declared with an unordered container type.
    std::set<std::string> unordered;
    for (std::size_t i = 0; i + 3 < t_.size(); ++i) {
        if (!isIdent(t_, i, "std") || !isPunct(t_, i + 1, "::") ||
            !anyIdent(t_, i + 2, {"unordered_map", "unordered_set",
                                  "unordered_multimap",
                                  "unordered_multiset"}) ||
            !isPunct(t_, i + 3, "<"))
            continue;
        int depth = 1;
        std::size_t j = i + 4;
        for (; j < t_.size() && depth > 0; ++j) {
            if (isPunct(t_, j, "<"))
                ++depth;
            else if (isPunct(t_, j, ">"))
                --depth;
            else if (isPunct(t_, j, ">>"))
                depth -= 2;
        }
        while (j < t_.size() &&
               (isPunct(t_, j, "&") || isPunct(t_, j, "*") ||
                isPunct(t_, j, "&&") || isIdent(t_, j, "const")))
            ++j;
        if (j < t_.size() && t_[j].kind == Tok::Ident &&
            !isPunct(t_, j + 1, "("))
            unordered.insert(t_[j].text);
    }
    if (unordered.empty())
        return;
    const char *detail =
        "iteration over an unordered container; element order is "
        "hash/seed dependent and can leak into output or "
        "accumulation — use a sorted snapshot or an ordered "
        "container";
    for (std::size_t i = 0; i < t_.size(); ++i) {
        // Range-for whose range expression names an unordered var.
        if (isIdent(t_, i, "for") && isPunct(t_, i + 1, "(")) {
            const std::size_t end = matchClose(t_, i + 1, "(", ")");
            std::size_t colon = t_.size();
            int depth = 0;
            for (std::size_t j = i + 1; j < end; ++j) {
                if (isPunct(t_, j, "("))
                    ++depth;
                else if (isPunct(t_, j, ")"))
                    --depth;
                else if (depth == 1 && isPunct(t_, j, ":")) {
                    colon = j;
                    break;
                }
            }
            for (std::size_t j = colon + 1; j + 1 < end + 1 && j < end;
                 ++j) {
                if (j < t_.size() && t_[j].kind == Tok::Ident &&
                    unordered.count(t_[j].text)) {
                    report(t_[i].line, "unordered-iteration", detail);
                    break;
                }
            }
        }
        // Explicit iterator walks: m.begin() / m.cbegin(). end() alone
        // stays clean — `it != m.end()` is the find-lookup idiom.
        if (t_[i].kind == Tok::Ident && unordered.count(t_[i].text) &&
            (isPunct(t_, i + 1, ".") || isPunct(t_, i + 1, "->")) &&
            anyIdent(t_, i + 2, {"begin", "cbegin", "rbegin"}) &&
            isPunct(t_, i + 3, "("))
            report(t_[i].line, "unordered-iteration", detail);
    }
}

void
RuleRunner::pointerKeyOrdered()
{
    if (!ctx_.in_src)
        return;
    for (std::size_t i = 0; i + 3 < t_.size(); ++i) {
        const bool is_map = isIdent(t_, i + 2, "map");
        const bool is_set = isIdent(t_, i + 2, "set");
        if (!isIdent(t_, i, "std") || !isPunct(t_, i + 1, "::") ||
            (!is_map && !is_set) || !isPunct(t_, i + 3, "<"))
            continue;
        int depth = 1;
        std::size_t args = 1;
        std::size_t last_in_first_arg = 0;
        bool in_first = true;
        for (std::size_t j = i + 4; j < t_.size() && depth > 0; ++j) {
            if (isPunct(t_, j, "<")) {
                ++depth;
            } else if (isPunct(t_, j, ">")) {
                --depth;
            } else if (isPunct(t_, j, ">>")) {
                depth -= 2;
            } else if (depth == 1 && isPunct(t_, j, ",")) {
                ++args;
                in_first = false;
            } else if (in_first && depth >= 1) {
                last_in_first_arg = j;
            }
        }
        // A raw-pointer key under the default std::less<T*> compares
        // addresses: allocation-order-dependent iteration. A custom
        // comparator (extra template argument) opts into an explicit
        // order and is exempt.
        if (last_in_first_arg != 0 &&
            isPunct(t_, last_in_first_arg, "*") &&
            args <= (is_map ? 2u : 1u))
            report(t_[i].line, "pointer-key-ordered",
                   "ordered container keyed by raw pointer; "
                   "iteration order depends on allocation addresses "
                   "— key by a stable id or supply a comparator");
    }
}

void
RuleRunner::parallelCapture()
{
    if (!ctx_.in_src)
        return;
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "insert",  "emplace", "clear",
        "erase",     "resize",       "pop_back", "push",   "pop",
    };
    static const std::set<std::string> kCompound = {
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
        if (!anyIdent(t_, i, {"parallelFor", "parallelMap"}) ||
            !isPunct(t_, i + 1, "("))
            continue;
        const std::size_t call_end = matchClose(t_, i + 1, "(", ")");
        // Locate the lambda argument: a '[' right after '(' or ','.
        std::size_t lb = t_.size();
        for (std::size_t j = i + 2; j < call_end; ++j) {
            if (isPunct(t_, j, "[") &&
                (isPunct(t_, j - 1, "(") || isPunct(t_, j - 1, ","))) {
                lb = j;
                break;
            }
        }
        if (lb == t_.size())
            continue;
        const std::size_t cap_end = matchClose(t_, lb, "[", "]");
        bool all_by_ref = false;
        std::set<std::string> ref_caps;
        for (std::size_t j = lb + 1; j + 1 < cap_end + 1 && j < cap_end - 1;
             ++j) {
            if (isPunct(t_, j, "&")) {
                if (j + 1 < t_.size() && t_[j + 1].kind == Tok::Ident &&
                    j + 1 < cap_end - 1)
                    ref_caps.insert(t_[j + 1].text);
                else
                    all_by_ref = true;
            }
        }
        if (!all_by_ref && ref_caps.empty())
            continue;

        // Parameter names, then the body.
        std::set<std::string> declared;
        std::size_t k = cap_end;
        if (isPunct(t_, k, "(")) {
            const std::size_t pend = matchClose(t_, k, "(", ")");
            std::string last_ident;
            for (std::size_t j = k + 1; j + 1 < pend + 1 && j < pend;
                 ++j) {
                if (isPunct(t_, j, ",") && j < pend - 1) {
                    if (!last_ident.empty())
                        declared.insert(last_ident);
                    last_ident.clear();
                } else if (j < t_.size() && t_[j].kind == Tok::Ident &&
                           !isPunct(t_, j + 1, "::")) {
                    last_ident = t_[j].text;
                }
            }
            if (!last_ident.empty())
                declared.insert(last_ident);
            k = pend;
        }
        while (k < call_end && !isPunct(t_, k, "{"))
            ++k;
        if (k >= call_end)
            continue;
        const std::size_t body_end = matchClose(t_, k, "{", "}");

        // Local declarations inside the body (heuristic: `Type name`
        // where the name is followed by '=', ';', ',', ':' or '{').
        for (std::size_t j = k + 1; j + 1 < body_end; ++j) {
            if (t_[j].kind != Tok::Ident)
                continue;
            const bool decl_next =
                isPunct(t_, j + 1, "=") || isPunct(t_, j + 1, ";") ||
                isPunct(t_, j + 1, ",") || isPunct(t_, j + 1, ":") ||
                isPunct(t_, j + 1, "{");
            if (!decl_next)
                continue;
            const Token &p = t_[j - 1];
            const bool decl_prev =
                (p.kind == Tok::Ident && p.text != "return" &&
                 p.text != "else" && p.text != "co_return") ||
                isPunct(t_, j - 1, ">") || isPunct(t_, j - 1, "*") ||
                isPunct(t_, j - 1, "&") || isPunct(t_, j - 1, "&&");
            if (decl_prev)
                declared.insert(t_[j].text);
        }

        const auto captured = [&](const std::string &name) {
            if (declared.count(name))
                return false;
            return all_by_ref || ref_caps.count(name) > 0;
        };
        const char *detail =
            "parallelFor/parallelMap lambda mutates by-reference "
            "captured state shared across indices; follow the "
            "index-ordered reduction idiom of core/parallel.h "
            "(write to slot [i], reduce after the join)";

        for (std::size_t j = k + 1; j + 1 < body_end; ++j) {
            if (t_[j].kind != Tok::Punct)
                continue;
            const std::string &op = t_[j].text;
            const bool assign = op == "=" || kCompound.count(op);
            const bool incdec = op == "++" || op == "--";
            if (!assign && !incdec)
                continue;
            // Left operand (assignment, postfix ++/--).
            std::size_t b = j;
            if (b >= 1 && t_[b - 1].kind == Tok::Ident) {
                std::size_t base = b - 1;
                while (base >= 2 &&
                       (isPunct(t_, base - 1, ".") ||
                        isPunct(t_, base - 1, "->")) &&
                       t_[base - 2].kind == Tok::Ident)
                    base -= 2;
                if (captured(t_[base].text)) {
                    report(t_[j].line, "parallel-capture", detail);
                    continue;
                }
            }
            // Prefix ++/-- on a captured name.
            if (incdec && j + 1 < body_end &&
                t_[j + 1].kind == Tok::Ident &&
                !isPunct(t_, j + 2, "[") && captured(t_[j + 1].text))
                report(t_[j].line, "parallel-capture", detail);
        }
        // Container mutators on captured names: `shared.push_back(x)`.
        for (std::size_t j = k + 2; j + 1 < body_end; ++j) {
            if (t_[j].kind != Tok::Ident || !kMutators.count(t_[j].text) ||
                !isPunct(t_, j + 1, "(") ||
                (!isPunct(t_, j - 1, ".") && !isPunct(t_, j - 1, "->")))
                continue;
            std::size_t base = j - 2;
            if (base >= t_.size() || t_[base].kind != Tok::Ident)
                continue; // `v[i].push_back(...)`: indexed, exempt
            while (base >= 2 &&
                   (isPunct(t_, base - 1, ".") ||
                    isPunct(t_, base - 1, "->")) &&
                   t_[base - 2].kind == Tok::Ident)
                base -= 2;
            if (captured(t_[base].text))
                report(t_[j].line, "parallel-capture", detail);
        }
    }
}

void
RuleRunner::bareAllow()
{
    for (const auto &[line, allow] : lf_.allows) {
        if (!allow.justified)
            report(line, "bare-allow",
                   "sim-lint suppression without a justification; "
                   "append the reason after the closing parenthesis");
    }
}

std::vector<Finding>
RuleRunner::run()
{
    duplicateInclude();
    wallClock();
    unseededRng();
    rawOutput();
    telemetryWallClock();
    scalarHotLoop();
    rawIntrinsics();
    heapTopCopy();
    includeGuard();
    checkSideEffect();
    unorderedIteration();
    pointerKeyOrdered();
    parallelCapture();
    bareAllow();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    // One finding per (line, rule): the Python linter matches each
    // rule at most once per physical line, and parity depends on it.
    findings_.erase(
        std::unique(findings_.begin(), findings_.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.line == b.line && a.rule == b.rule;
                    }),
        findings_.end());
    return findings_;
}

} // namespace

std::vector<Finding>
runRules(const LexedFile &lf, const std::string &file,
         const FileContext &ctx)
{
    return RuleRunner(lf, file, ctx).run();
}

} // namespace mtia_lint
