#ifndef MTIA_LINT_RULES_H_
#define MTIA_LINT_RULES_H_

/**
 * @file
 * The mtia-lint rule engine: token-level ports of every rule in
 * scripts/check_sim_invariants.py plus the determinism rules that are
 * only feasible with a real lexer (unordered-iteration,
 * pointer-key-ordered, parallel-capture) and the suppression-hygiene
 * rule (bare-allow). Findings carry the same `file:line: [rule]`
 * shape as the Python linter so the two can be diffed directly — the
 * lint_parity ctest does exactly that on the shared fixtures.
 */

#include <string>
#include <vector>

#include "lexer.h"

namespace mtia_lint {

struct Finding
{
    std::string file; ///< path as given (relative to --root when under it)
    int line = 0;
    std::string rule;
    std::string detail;
};

/** Which rule families apply to a file; mirrors the Python linter's
 *  path-derived context exactly. */
struct FileContext
{
    bool in_src = false;        ///< raw-output + new determinism rules
    bool logging_exempt = false;///< src/sim/logging may print
    bool telemetry = false;     ///< telemetry-wall-clock applies
    bool sim_core = false;      ///< heap-top-copy applies
    bool dtype_kernel = false;  ///< scalar-hot-loop exempt
    bool simd_kernel = false;   ///< raw-intrinsics exempt (src/core/simd*)
    bool is_header = false;     ///< include-guard applies
};

/** Run every applicable rule over @p lf. Suppressions
 *  (`// sim-lint: allow(<rule>)` on the finding's line) are already
 *  filtered out; a suppression without a trailing justification
 *  yields a bare-allow finding instead. */
std::vector<Finding> runRules(const LexedFile &lf, const std::string &file,
                              const FileContext &ctx);

} // namespace mtia_lint

#endif // MTIA_LINT_RULES_H_
