#ifndef MTIA_LINT_INCLUDE_GRAPH_H_
#define MTIA_LINT_INCLUDE_GRAPH_H_

/**
 * @file
 * Cross-TU pass: the full quoted-include graph of a source tree and
 * the layer DAG it must respect.
 *
 * Layer file format (tools/mtia-lint/layers.def), one declaration per
 * line, '#' comments:
 *
 *     layer core                 # rank 0 (bottom)
 *     layer sim                  # rank 1
 *     layer tensor mem           # rank 2: modules in one layer
 *     ...
 *     omni telemetry sim         # includable from anywhere; may
 *                                # itself include up to sim's layer
 *
 * Rules enforced over every `#include "module/..."` edge:
 *   layer-violation   an include that points at a strictly higher
 *                     layer (architecture inversion), or a module
 *                     missing from the table entirely.
 *   include-cycle     any cycle in the file-level include graph.
 */

#include <map>
#include <string>
#include <vector>

#include "rules.h"

namespace mtia_lint {

struct LayerTable
{
    std::map<std::string, int> rank;  ///< module -> layer rank
    std::map<std::string, int> omni;  ///< module -> max rank it may use
    int max_rank = 0;
    std::string error; ///< non-empty if the file failed to parse
};

LayerTable loadLayerTable(const std::string &path);

struct IncludeGraph
{
    /** src-relative path -> src-relative includes (resolved, sorted). */
    std::map<std::string, std::vector<std::string>> edges;
    /** src-relative path -> line number of each include directive. */
    std::map<std::string, std::map<std::string, int>> edge_lines;
    int file_count = 0;
    int edge_count = 0;
};

/** Scan every C++ source file under @p src_root and build the quoted-
 *  include graph (includes resolved against @p src_root). */
IncludeGraph buildIncludeGraph(const std::string &src_root);

/** Layer + cycle checks. Findings use paths prefixed with
 *  @p display_prefix (e.g. "src/"). */
std::vector<Finding> checkLayers(const IncludeGraph &g,
                                 const LayerTable &layers,
                                 const std::string &display_prefix);

/** Module-level edges ("a -> b"), deduplicated and sorted — the input
 *  for the dependency diagram in DESIGN.md. */
std::vector<std::string> moduleEdges(const IncludeGraph &g);

} // namespace mtia_lint

#endif // MTIA_LINT_INCLUDE_GRAPH_H_
